// Seeded fault injection for the CONGEST message plane.
//
// A FaultPlan turns one uint64_t seed into a complete adversarial schedule:
// which messages are dropped, duplicated, or delayed, which nodes crash and
// recover, which links flap, and how same-round deliveries are reordered.
// Every decision is a *pure function* of (seed, channel, epoch, round,
// subject) through a splitmix-style mixer — not a stateful stream — so the
// schedule a consumer observes does not depend on the order or number of
// queries it makes. Two runs that consult the plan at the same coordinates
// see the same faults; the whole schedule replays from the seed alone.
//
// Every fault that actually fires is recorded as a FaultEvent. A plan can
// also be built *from* an explicit event list (replay mode): only the listed
// events fire, at exactly their recorded coordinates. This is the substrate
// for the chaos harness's shrinker — take the generative schedule's injected
// events, greedily delete subsets, and replay until a minimal failing list
// remains (tests/chaos_harness.hpp).
//
// Epochs delimit independent phases: a consumer (the aggregation scheduler,
// a protocol loop) calls begin_epoch() at each phase start, and each phase's
// local round counter restarts at 1. The `horizon` config bounds the rounds
// (per epoch) in which message faults fire — beyond it the network is clean,
// which is the "eventual delivery" guarantee retry loops rely on to
// terminate. Crash and flap windows must *start* within the horizon but may
// extend up to their maximum length past it.
//
// FaultPlan is stateful only in its epoch counter and injected-event log; it
// is NOT thread-safe and must not be shared across concurrently simulated
// scenarios (give each scenario its own plan, same as its own Rng).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/round_ledger.hpp"
#include "sim/sync_network.hpp"

namespace dls {

enum class FaultKind : std::uint8_t {
  kDrop,       // message lost in flight (subject = directed slot)
  kDuplicate,  // message delivered twice (subject = directed slot)
  kDelay,      // message held `param` extra rounds (subject = directed slot)
  kReorder,    // same-round delivery batch permuted (subject = consumer key)
  kCrash,      // node down for `param` rounds from `round` (subject = node)
  kLinkDown,   // edge down for `param` rounds from `round` (subject = edge)
  kCorrupt,    // payload bits flipped in flight: `param` is the nonzero XOR
               // mask applied to the payload word (subject = directed slot)
};

/// All kinds, for exhaustive iteration (round-trip tests, mix tables).
inline constexpr FaultKind kAllFaultKinds[] = {
    FaultKind::kDrop,  FaultKind::kDuplicate, FaultKind::kDelay,
    FaultKind::kReorder, FaultKind::kCrash,   FaultKind::kLinkDown,
    FaultKind::kCorrupt,
};

const char* to_string(FaultKind kind);
/// Inverse of to_string; throws std::invalid_argument on an unknown name.
FaultKind fault_kind_from_string(const std::string& name);

/// One fault that fired (or, in replay mode, is scheduled to fire).
struct FaultEvent {
  FaultKind kind = FaultKind::kDrop;
  std::uint32_t epoch = 0;     // phase the fault belongs to
  std::uint64_t round = 0;     // phase-local round (windows: start round)
  std::uint64_t subject = 0;   // slot / node / edge / consumer key per kind
  std::uint32_t param = 0;     // delay or window length; 0 when unused

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
  friend auto operator<=>(const FaultEvent&, const FaultEvent&) = default;
};

std::string to_string(const FaultEvent& event);

/// Rates and bounds for the generative mode. All rates are per-consultation
/// probabilities in [0, 1].
struct FaultConfig {
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double delay_rate = 0.0;
  std::uint32_t max_delay = 3;       // delays drawn from {1..max_delay}
  bool reorder = false;              // permute same-round delivery batches
  double crash_rate = 0.0;           // per (node, round) window-start chance
  std::uint32_t max_crash_len = 4;   // windows drawn from {1..max_crash_len}
  double flap_rate = 0.0;            // per (edge, round) window-start chance
  std::uint32_t max_flap_len = 3;
  /// Per-consultation chance a delivered payload is corrupted in flight: a
  /// seeded nonzero 32-bit mask is XORed into the low (mantissa) bits of the
  /// payload word (see corrupt_payload), so the value always changes but
  /// stays finite. Corruption composes with delay/duplication — every copy
  /// of a corrupted transmission carries the perturbed payload — and never
  /// fires on a message that was already dropped.
  double corrupt_rate = 0.0;

  /// Opt-in payload integrity for consumers that simulate messages without
  /// materialising CongestMessage structs (the aggregation scheduler). With
  /// integrity on, every transmission ships one extra checksum word — the
  /// message occupies its directed slot for 2 rounds instead of 1 — and a
  /// corrupted payload fails verification at the receiver, which discards it
  /// exactly like a drop (the sender retransmits). Message-level consumers
  /// (FaultyNetwork, reliable_send) opt in per message instead, via
  /// CongestMessage::checksummed / with_integrity (sim/sync_network.hpp).
  bool integrity = false;

  /// Message faults only fire in phase-local rounds 1..horizon (crash/flap
  /// windows must start within it). A finite horizon guarantees eventual
  /// delivery; set to kNoHorizon to model a permanently lossy network (the
  /// timeout/abort paths exist for exactly that case).
  static constexpr std::uint64_t kNoHorizon = ~std::uint64_t{0};
  std::uint64_t horizon = 32;

  /// Fault-tolerant phase loops abort (ChaosAbortError) once a phase exceeds
  /// this many rounds instead of livelocking.
  std::uint64_t round_limit = std::uint64_t{1} << 20;

  /// What FaultyNetwork::send() does when the sender is crashed or the link
  /// is down: count and swallow the message, or throw std::invalid_argument.
  enum class DownSendPolicy : std::uint8_t { kSilentDrop, kThrow };
  DownSendPolicy down_send = DownSendPolicy::kSilentDrop;
};

/// What the plan decided for one message consultation.
struct MessageFate {
  bool dropped = false;
  std::uint32_t delay = 0;     // extra rounds before delivery (0 = on time)
  bool duplicated = false;     // one extra copy arrives delay+1 rounds later
  bool corrupted = false;      // payload perturbed in flight
  std::uint32_t corrupt_mask = 0;  // nonzero XOR mask when corrupted
};

/// XORs `mask` (forced nonzero) into the low 32 bits of the IEEE-754 bit
/// pattern of `value`. Those bits are all mantissa, so the result is finite
/// whenever the input is, yet always a *different* bit pattern — integer
/// inputs become detectably non-integer-exact sums downstream.
double corrupt_payload(double value, std::uint32_t mask);

class FaultPlan {
 public:
  /// Generative mode: the schedule is derived from `seed` on demand.
  explicit FaultPlan(std::uint64_t seed, FaultConfig config = {});

  /// Replay mode: exactly `events` fire, at their recorded coordinates.
  /// `seed` must match the generative plan the events came from so reorder
  /// permutations re-derive identically.
  static FaultPlan replay(std::uint64_t seed, std::vector<FaultEvent> events,
                          FaultConfig config = {});

  /// Opens the next phase; returns its epoch id (first call returns 1;
  /// consumers that never call this query epoch 0).
  std::uint32_t begin_epoch() { return ++epoch_; }
  std::uint32_t epoch() const { return epoch_; }

  /// Restores the plan to its just-constructed state (epoch 0, empty
  /// injected log) so one plan object can drive a fresh identical run.
  void reset();

  /// The fate of the message crossing directed `slot` whose delivery is due
  /// in phase-local `round`. Crashed endpoints and down links drop it.
  MessageFate message_fate(std::uint64_t round, std::size_t slot, NodeId from,
                           NodeId to);

  /// True iff a crash window covers (current epoch, round) for `v`.
  bool node_crashed(std::uint64_t round, NodeId v);
  /// True iff a flap window covers (current epoch, round) for `e`.
  bool link_down(std::uint64_t round, EdgeId e);

  /// Permutation to apply to a `count`-element same-round delivery batch of
  /// consumer `subject`, or an empty vector for identity (reorder disabled,
  /// count < 2, past horizon, or the derived shuffle was the identity).
  std::vector<std::size_t> reorder_permutation(std::uint64_t round,
                                               std::uint64_t subject,
                                               std::size_t count);

  const FaultConfig& config() const { return config_; }
  std::uint64_t seed() const { return seed_; }
  bool replay_mode() const { return replay_; }

  /// Every fault that fired so far, sorted. Feed this to FaultPlan::replay
  /// (and the shrinker) to reproduce the schedule without the hash oracle.
  std::vector<FaultEvent> injected() const;

 private:
  FaultPlan(std::uint64_t seed, FaultConfig config, bool replay,
            std::vector<FaultEvent> events);

  // Independent decision channels (distinct from FaultKind: some kinds need
  // two draws, e.g. window start + window length).
  enum class Channel : std::uint64_t {
    kDrop,
    kDuplicate,
    kDelay,
    kDelayLen,
    kCrash,
    kCrashLen,
    kFlap,
    kFlapLen,
    kReorder,
    // Appended (never reordered): channel values feed the coordinate hash,
    // so inserting above would silently reshuffle every existing schedule.
    kCorrupt,
    kCorruptMask,
  };
  std::uint64_t mix(Channel channel, std::uint64_t round,
                    std::uint64_t subject) const;
  double uniform(Channel channel, std::uint64_t round,
                 std::uint64_t subject) const;
  /// Replay lookup; returns whether the event exists, and its param.
  bool replay_find(FaultKind kind, std::uint64_t round, std::uint64_t subject,
                   std::uint32_t* param) const;
  void record(FaultKind kind, std::uint64_t round, std::uint64_t subject,
              std::uint32_t param);
  /// Window length (0 = no window) starting at `round` for crash/flap.
  std::uint32_t window_len(FaultKind kind, std::uint64_t round,
                           std::uint64_t subject);

  std::uint64_t seed_ = 0;
  FaultConfig config_;
  bool replay_ = false;
  std::vector<FaultEvent> replay_events_;  // sorted
  std::uint32_t epoch_ = 0;
  std::vector<FaultEvent> injected_;       // kept sorted + deduplicated
};

/// Thrown by fault-tolerant phase loops that exhaust their round budget
/// (FaultConfig::round_limit). Carries the partial round accounting so the
/// failure is diagnosable: which phase wedged, after how many rounds, with
/// what congestion profile.
class ChaosAbortError : public std::runtime_error {
 public:
  ChaosAbortError(const std::string& what, RoundLedger ledger)
      : std::runtime_error(what), ledger_(std::move(ledger)) {}
  const RoundLedger& ledger() const { return ledger_; }

 private:
  RoundLedger ledger_;
};

/// SyncNetwork with a FaultPlan between the wire and the inboxes.
//
// send() still enforces every CONGEST capacity rule (a dropped message
// occupied its slot — the adversary eats messages, it does not refund
// bandwidth). Faults apply at delivery time: each message due this round is
// consulted once and then dropped, delayed, duplicated, or delivered;
// messages to a crashed node are dropped; a crashed node's inbox reads
// empty. Sends from a crashed node or over a down link are policed by
// FaultConfig::down_send (silent drop or throw) *at the source*, without
// occupying the slot.
//
// With a null plan the wrapper is transparent: identical inboxes, rounds,
// and metrics as the wrapped SyncNetwork (pinned by test_fault_injection).
//
// step() costs O(n + deliveries) — the fault layer scans every inbox — so
// this wrapper is for tests and chaos runs, not the hot schedulers (those
// consult the FaultPlan directly; see sim/aggregation_scheduler.hpp).
class FaultyNetwork {
 public:
  explicit FaultyNetwork(const Graph& g, FaultPlan* plan = nullptr);

  /// Queues a message for the current round (see SyncNetwork::send).
  /// Additionally consults the plan: a crashed sender or a down link either
  /// swallows the message (kSilentDrop; counted in suppressed_sends) or
  /// throws std::invalid_argument (kThrow).
  void send(const CongestMessage& message);

  /// Advances one round: steps the wire, then filters deliveries through the
  /// plan (drop / delay / duplicate / reorder; crashed receivers lose their
  /// mail) into this wrapper's own epoch-stamped inboxes.
  void step();

  /// Messages delivered to `v` in the most recent step. A node that is
  /// crashed this round reads an empty inbox (its mail was dropped, not
  /// queued). Throws std::invalid_argument for out-of-range ids — including
  /// at round 0, before any step(), where every inbox is defined and empty.
  const std::vector<CongestMessage>& inbox(NodeId v) const;

  void attach_metrics(NetworkMetrics* metrics) { net_.attach_metrics(metrics); }
  std::uint64_t rounds() const { return net_.rounds(); }
  std::uint64_t messages_sent() const { return net_.messages_sent(); }
  const Graph& graph() const { return net_.graph(); }
  FaultPlan* plan() const { return plan_; }

  /// True iff `v` / `e` is up at the current round (always true, null plan).
  bool node_up(NodeId v) const;
  bool link_up(EdgeId e) const;

  // Fault observability.
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t duplicated() const { return duplicated_; }
  std::uint64_t delayed() const { return delayed_; }
  std::uint64_t suppressed_sends() const { return suppressed_sends_; }
  /// Corrupted transmissions whose receiver-side checksum verification
  /// failed (checksummed messages only); each is treated as a drop, feeding
  /// whatever ack/retry loop rides above (e.g. reliable_send).
  std::uint64_t corrupt_detected() const { return corrupt_detected_; }
  /// Corrupted payloads delivered verbatim (unchecksummed messages): silent
  /// data corruption the message plane cannot see — the verify layer's job.
  std::uint64_t corrupt_delivered() const { return corrupt_delivered_; }

 private:
  void deliver(const CongestMessage& message);

  SyncNetwork net_;
  FaultPlan* plan_;
  std::vector<std::vector<CongestMessage>> inboxes_;
  std::vector<std::uint64_t> inbox_epoch_;
  struct Held {
    std::uint64_t due = 0;
    CongestMessage msg;
  };
  std::vector<Held> held_;              // delayed + duplicate copies in flight
  std::vector<NodeId> touched_;         // inboxes stamped this round
  std::uint64_t dropped_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
  std::uint64_t suppressed_sends_ = 0;
  std::uint64_t corrupt_detected_ = 0;
  std::uint64_t corrupt_delivered_ = 0;
};

}  // namespace dls
