#include "sim/round_ledger.hpp"

#include <algorithm>

namespace dls {

void RoundLedger::charge_local(std::uint64_t rounds, const std::string& label) {
  local_ += rounds;
  entries_.push_back({label, rounds, 0});
}

void RoundLedger::charge_global(std::uint64_t rounds, const std::string& label) {
  global_ += rounds;
  entries_.push_back({label, 0, rounds});
}

std::uint64_t RoundLedger::total_hybrid() const {
  std::uint64_t total = 0;
  for (const LedgerEntry& e : entries_) {
    total += std::max(e.local_rounds, e.global_rounds);
  }
  return total;
}

void RoundLedger::clear() {
  local_ = 0;
  global_ = 0;
  entries_.clear();
}

void RoundLedger::absorb(const RoundLedger& other, const std::string& prefix) {
  for (const LedgerEntry& e : other.entries_) {
    entries_.push_back({prefix + "/" + e.label, e.local_rounds, e.global_rounds});
  }
  local_ += other.local_;
  global_ += other.global_;
}

}  // namespace dls
