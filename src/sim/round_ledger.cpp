#include "sim/round_ledger.hpp"

#include <algorithm>

namespace dls {

void RoundLedger::charge_local(std::uint64_t rounds, const std::string& label) {
  charge_local(rounds, label, PhaseCongestion{});
}

void RoundLedger::charge_local(std::uint64_t rounds, const std::string& label,
                               const PhaseCongestion& congestion) {
  local_ += rounds;
  entries_.push_back({label, rounds, 0, congestion});
}

void RoundLedger::charge_global(std::uint64_t rounds, const std::string& label) {
  charge_global(rounds, label, PhaseCongestion{});
}

void RoundLedger::charge_global(std::uint64_t rounds, const std::string& label,
                                const PhaseCongestion& congestion) {
  global_ += rounds;
  entries_.push_back({label, 0, rounds, congestion});
}

std::uint64_t RoundLedger::total_hybrid() const {
  std::uint64_t total = 0;
  for (const LedgerEntry& e : entries_) {
    total += std::max(e.local_rounds, e.global_rounds);
  }
  return total;
}

std::size_t RoundLedger::peak_congestion() const {
  std::size_t peak = 0;
  for (const LedgerEntry& e : entries_) {
    peak = std::max(peak, e.congestion.peak_slot_messages);
  }
  return peak;
}

std::uint64_t RoundLedger::total_messages() const {
  std::uint64_t total = 0;
  for (const LedgerEntry& e : entries_) total += e.congestion.messages;
  return total;
}

void RoundLedger::clear() {
  local_ = 0;
  global_ = 0;
  entries_.clear();
}

void RoundLedger::absorb(const RoundLedger& other, const std::string& prefix) {
  for (const LedgerEntry& e : other.entries_) {
    entries_.push_back(
        {prefix + "/" + e.label, e.local_rounds, e.global_rounds, e.congestion});
  }
  local_ += other.local_;
  global_ += other.global_;
}

}  // namespace dls
