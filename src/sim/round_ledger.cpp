#include "sim/round_ledger.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dls {

void RoundLedger::charge_local(std::uint64_t rounds, const std::string& label) {
  charge_local(rounds, label, PhaseCongestion{});
}

void RoundLedger::charge_local(std::uint64_t rounds, const std::string& label,
                               const PhaseCongestion& congestion) {
  local_ += rounds;
  entries_.push_back({label, rounds, 0, congestion});
}

void RoundLedger::charge_global(std::uint64_t rounds, const std::string& label) {
  charge_global(rounds, label, PhaseCongestion{});
}

void RoundLedger::charge_global(std::uint64_t rounds, const std::string& label,
                                const PhaseCongestion& congestion) {
  global_ += rounds;
  entries_.push_back({label, 0, rounds, congestion});
}

std::uint64_t RoundLedger::total_hybrid() const {
  std::uint64_t total = 0;
  for (const LedgerEntry& e : entries_) {
    total += std::max(e.local_rounds, e.global_rounds);
  }
  return total;
}

std::size_t RoundLedger::peak_congestion() const {
  std::size_t peak = 0;
  for (const LedgerEntry& e : entries_) {
    peak = std::max(peak, e.congestion.peak_slot_messages);
  }
  return peak;
}

std::uint64_t RoundLedger::total_messages() const {
  std::uint64_t total = 0;
  for (const LedgerEntry& e : entries_) total += e.congestion.messages;
  return total;
}

void RoundLedger::clear() {
  local_ = 0;
  global_ = 0;
  entries_.clear();
  recovery_events_.clear();
}

void RoundLedger::record_recovery(RecoveryEvent event) {
  // Every recovery transition, wherever it is recorded (supervisor ladder,
  // solver watchdog, checkpoint restore), becomes a span annotation on the
  // ambient trace and a registry tick. No-ops on untraced runs beyond one
  // atomic add; clean runs record no events at all.
  if (Tracer* tracer = Tracer::ambient()) {
    tracer->annotate_current("recovery: " + to_string(event));
  }
  static MetricCounter& recovery_metric =
      MetricsRegistry::global().counter("recovery.events");
  recovery_metric.increment();
  MetricsRegistry::global()
      .counter(std::string("recovery.") + to_string(event.action))
      .increment();
  recovery_events_.push_back(std::move(event));
}

std::size_t RoundLedger::recovery_count(RecoveryAction action) const {
  std::size_t count = 0;
  for (const RecoveryEvent& e : recovery_events_) {
    if (e.action == action) ++count;
  }
  return count;
}

void RoundLedger::absorb(const RoundLedger& other, const std::string& prefix) {
  for (const LedgerEntry& e : other.entries_) {
    entries_.push_back(
        {prefix + "/" + e.label, e.local_rounds, e.global_rounds, e.congestion});
  }
  for (const RecoveryEvent& e : other.recovery_events_) {
    recovery_events_.push_back(e);
  }
  local_ += other.local_;
  global_ += other.global_;
}

const char* to_string(RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kRetry: return "retry";
    case RecoveryAction::kRebuild: return "rebuild";
    case RecoveryAction::kDegrade: return "degrade";
    case RecoveryAction::kCheckpointSave: return "checkpoint-save";
    case RecoveryAction::kCheckpointRestore: return "checkpoint-restore";
    case RecoveryAction::kWatchdogRestart: return "watchdog-restart";
    case RecoveryAction::kWatchdogRefine: return "watchdog-refine";
    case RecoveryAction::kWatchdogRebound: return "watchdog-rebound";
    case RecoveryAction::kAbort: return "abort";
    case RecoveryAction::kCertificateResolve: return "certificate-resolve";
  }
  return "?";
}

std::string to_string(const RecoveryEvent& event) {
  std::string out = to_string(event.action);
  out += "(subject=" + std::to_string(event.subject) +
         ", attempt=" + std::to_string(event.attempt) +
         ", rounds_lost=" + std::to_string(event.rounds_lost);
  if (!event.detail.empty()) out += ", " + event.detail;
  out += ")";
  return out;
}

}  // namespace dls
