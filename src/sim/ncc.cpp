#include "sim/ncc.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/assert.hpp"

namespace dls {

namespace {
std::size_t default_capacity(std::size_t n) {
  std::size_t cap = 1;
  while ((std::size_t{1} << cap) < n) ++cap;
  return std::max<std::size_t>(cap, 1);
}
}  // namespace

NccNetwork::NccNetwork(std::size_t num_nodes, std::size_t capacity)
    : num_nodes_(num_nodes),
      capacity_(capacity == 0 ? default_capacity(num_nodes) : capacity),
      sent_this_round_(num_nodes, 0),
      inboxes_(num_nodes) {
  DLS_REQUIRE(num_nodes >= 1, "NCC network needs at least one node");
}

void NccNetwork::send(const NccMessage& message) {
  DLS_REQUIRE(message.from < num_nodes_ && message.to < num_nodes_,
              "NCC endpoint out of range");
  DLS_REQUIRE(sent_this_round_[message.from] < capacity_,
              "NCC violation: sender exceeded per-round capacity");
  ++sent_this_round_[message.from];
  pending_.push_back(message);
  ++messages_sent_;
}

void NccNetwork::step() {
  for (auto& inbox : inboxes_) inbox.clear();
  // Group by receiver, keep the `capacity_` messages with lowest sender id.
  std::stable_sort(pending_.begin(), pending_.end(),
                   [](const NccMessage& a, const NccMessage& b) {
                     return std::tie(a.to, a.from) < std::tie(b.to, b.from);
                   });
  for (const NccMessage& msg : pending_) {
    if (inboxes_[msg.to].size() < capacity_) {
      inboxes_[msg.to].push_back(msg);
    } else {
      ++messages_dropped_;
    }
  }
  pending_.clear();
  std::fill(sent_this_round_.begin(), sent_this_round_.end(), 0);
  ++round_;
}

const std::vector<NccMessage>& NccNetwork::inbox(NodeId v) const {
  DLS_REQUIRE(v < inboxes_.size(), "node id out of range");
  return inboxes_[v];
}

std::size_t ncc_congestion(std::size_t num_nodes,
                           const std::vector<NccPart>& parts) {
  std::vector<std::size_t> count(num_nodes, 0);
  std::size_t rho = 0;
  for (const NccPart& part : parts) {
    for (NodeId v : part.members) {
      DLS_REQUIRE(v < num_nodes, "part member out of range");
      rho = std::max(rho, ++count[v]);
    }
  }
  return rho;
}

NccAggregationOutcome ncc_partwise_aggregate(std::size_t num_nodes,
                                             const std::vector<NccPart>& parts,
                                             const AggregationMonoid& monoid,
                                             Rng& rng, std::size_t capacity) {
  NccAggregationOutcome outcome;
  outcome.results.assign(parts.size(), monoid.identity);
  if (parts.empty()) return outcome;
  NccNetwork net(num_nodes, capacity);
  const std::size_t cap = net.capacity();

  // Virtual `cap`-ary tree per part over member indices: member i's parent is
  // member (i-1)/cap; member 0 is the root.
  struct PartState {
    std::vector<std::uint32_t> waiting;  // children yet to report, per member
    std::vector<double> acc;             // subtree aggregate per member
    std::vector<char> informed;          // broadcast progress
    std::size_t informed_count = 0;
    bool root_done = false;
  };
  std::vector<PartState> state(parts.size());
  // Per-node outbox of (tag, to, payload); tag encodes (part, up/down).
  struct Outgoing {
    NodeId to;
    std::uint64_t tag;
    double payload;
    std::uint64_t priority;
  };
  std::vector<std::deque<Outgoing>> outbox(num_nodes);
  auto tag_of = [](std::size_t part, bool down) {
    return (static_cast<std::uint64_t>(part) << 1) | (down ? 1 : 0);
  };

  std::size_t roots_pending = 0;
  std::size_t inform_pending = 0;
  for (std::size_t p = 0; p < parts.size(); ++p) {
    const NccPart& part = parts[p];
    DLS_REQUIRE(!part.members.empty(), "empty part");
    DLS_REQUIRE(part.members.size() == part.values.size(),
                "part members/values mismatch");
    PartState& st = state[p];
    const std::size_t k = part.members.size();
    st.waiting.assign(k, 0);
    st.acc = part.values;
    st.informed.assign(k, 0);
    for (std::size_t i = 1; i < k; ++i) ++st.waiting[(i - 1) / cap];
    ++roots_pending;
    inform_pending += k;
    // Leaves queue their value to the parent immediately.
    for (std::size_t i = 1; i < k; ++i) {
      if (st.waiting[i] == 0) {
        outbox[part.members[i]].push_back({part.members[(i - 1) / cap],
                                           tag_of(p, false), st.acc[i], rng()});
      }
    }
    if (st.waiting[0] == 0) {
      st.root_done = true;
      --roots_pending;
      outcome.results[p] = st.acc[0];
      st.informed[0] = 1;
      ++st.informed_count;
      --inform_pending;
      // Begin broadcast from the root.
      for (std::size_t c = 1; c <= cap && c < k; ++c) {
        outbox[part.members[0]].push_back(
            {part.members[c], tag_of(p, true), st.acc[0], rng()});
      }
    }
  }

  // Member-index lookup per part (for routing received messages).
  std::vector<std::vector<std::pair<NodeId, std::uint32_t>>> member_index(
      parts.size());
  for (std::size_t p = 0; p < parts.size(); ++p) {
    auto& idx = member_index[p];
    for (std::uint32_t i = 0; i < parts[p].members.size(); ++i) {
      idx.push_back({parts[p].members[i], i});
    }
    std::sort(idx.begin(), idx.end());
    for (std::size_t i = 1; i < idx.size(); ++i) {
      DLS_REQUIRE(idx[i].first != idx[i - 1].first,
                  "a node may appear in a part at most once");
    }
  }
  auto local_index = [&](std::size_t p, NodeId v) -> std::uint32_t {
    const auto& idx = member_index[p];
    const auto it = std::lower_bound(idx.begin(), idx.end(),
                                     std::make_pair(v, std::uint32_t{0}));
    DLS_ASSERT(it != idx.end() && it->first == v, "message to non-member");
    return it->second;
  };

  std::uint64_t safety = 0;
  while (roots_pending > 0 || inform_pending > 0) {
    DLS_ASSERT(++safety < 16ull * 1024 * 1024, "NCC aggregation stalled");
    // Senders: each node emits up to `cap` queued messages, highest random
    // priority first (random pacing avoids persistent receiver collisions).
    for (NodeId v = 0; v < num_nodes; ++v) {
      auto& q = outbox[v];
      if (q.empty()) continue;
      std::sort(q.begin(), q.end(), [](const Outgoing& a, const Outgoing& b) {
        return a.priority < b.priority;
      });
      const std::size_t batch = std::min(cap, q.size());
      for (std::size_t i = 0; i < batch; ++i) {
        net.send({v, q[i].to, q[i].tag, q[i].payload});
      }
      // Optimistically remove; re-queue on observed drop below.
    }
    // Snapshot attempted sends to detect drops after step().
    std::vector<std::vector<Outgoing>> attempted(num_nodes);
    for (NodeId v = 0; v < num_nodes; ++v) {
      auto& q = outbox[v];
      const std::size_t batch = std::min(cap, q.size());
      attempted[v].assign(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(batch));
      q.erase(q.begin(), q.begin() + static_cast<std::ptrdiff_t>(batch));
    }
    net.step();
    // Process deliveries; find dropped messages by diffing inboxes.
    for (NodeId v = 0; v < num_nodes; ++v) {
      for (const NccMessage& msg : net.inbox(v)) {
        const std::size_t p = msg.tag >> 1;
        const bool down = (msg.tag & 1) != 0;
        PartState& st = state[p];
        const NccPart& part = parts[p];
        const std::uint32_t i = local_index(p, v);
        const std::size_t k = part.members.size();
        if (!down) {
          st.acc[i] = monoid.op(st.acc[i], msg.payload);
          DLS_ASSERT(st.waiting[i] > 0, "unexpected convergecast message");
          if (--st.waiting[i] == 0) {
            if (i == 0) {
              st.root_done = true;
              --roots_pending;
              outcome.results[p] = st.acc[0];
              st.informed[0] = 1;
              ++st.informed_count;
              --inform_pending;
              for (std::size_t c = 1; c <= cap && c < k; ++c) {
                outbox[v].push_back({part.members[c], tag_of(p, true),
                                     st.acc[0], rng()});
              }
            } else {
              outbox[v].push_back({part.members[(i - 1) / cap], tag_of(p, false),
                                   st.acc[i], rng()});
            }
          }
        } else if (!st.informed[i]) {
          st.informed[i] = 1;
          ++st.informed_count;
          --inform_pending;
          st.acc[i] = msg.payload;  // final aggregate
          for (std::size_t c = cap * i + 1; c <= cap * i + cap && c < k; ++c) {
            outbox[v].push_back(
                {part.members[c], tag_of(p, true), msg.payload, rng()});
          }
        }
      }
    }
    // Retransmit dropped messages: anything attempted but absent from the
    // receiver's inbox goes back to the outbox with a fresh priority.
    for (NodeId v = 0; v < num_nodes; ++v) {
      for (const Outgoing& out : attempted[v]) {
        const auto& inbox = net.inbox(out.to);
        const bool delivered =
            std::any_of(inbox.begin(), inbox.end(), [&](const NccMessage& m) {
              return m.from == v && m.tag == out.tag && m.payload == out.payload;
            });
        if (!delivered) {
          outbox[v].push_back({out.to, out.tag, out.payload, rng()});
        }
      }
    }
  }
  outcome.rounds = net.rounds();
  outcome.messages = net.messages_sent();
  outcome.drops = net.messages_dropped();
  return outcome;
}

}  // namespace dls
