// A synchronous CONGEST message layer with per-edge capacity enforcement.
//
// Each round, a node may send one O(log n)-bit message over each incident
// edge (per direction). SyncNetwork::step() validates the capacity
// constraint — violating it throws, which is how the test suite proves our
// distributed algorithms really are CONGEST algorithms — and delivers all
// messages simultaneously, incrementing the round counter.
//
// Messages are a small fixed struct of machine words; `words` declares how
// many O(log n)-bit units the payload occupies, and sending a w-word message
// occupies the edge for w consecutive rounds (enforced via edge busy-until
// bookkeeping): queued at round r it is delivered by the step that advances
// the clock to round r + w, and any same-slot send in rounds r..r+w-1 throws.
//
// Cost model of the simulator itself: a step() is O(deliverable + still
// pending messages), independent of n. Inboxes are epoch-stamped — an inbox
// is cleared lazily the first time a message lands in it in a given round,
// and inbox() reads of a node that received nothing this round return a
// shared empty vector — so neither stepping nor idle nodes ever pay O(n).
// Pending multi-word messages are compacted in place (no per-step
// allocation) and survive any number of steps until their slot frees.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network_metrics.hpp"

namespace dls {

struct CongestMessage {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  std::uint64_t tag = 0;      // algorithm-defined discriminator
  double payload = 0.0;       // one O(log n)-bit word of content
  std::uint32_t words = 1;    // payload size in O(log n)-bit units
  // Opt-in payload integrity (docs/MESSAGE_PLANE.md). A checksummed message
  // carries one extra FNV-1a word over (tag, payload bits); senders opt in
  // via with_integrity(), which also bumps `words` — the checksum is a real
  // word on the wire, charged like any other. Defaults keep every existing
  // sender bit-identical.
  std::uint64_t checksum = 0;
  bool checksummed = false;
};

/// FNV-1a over the message's tag and payload bit pattern — the integrity
/// word a checksummed sender ships. Deterministic, endianness-free.
std::uint64_t payload_checksum(const CongestMessage& message);

/// Copy of `message` with the integrity word attached: checksum set,
/// checksummed = true, and `words` increased by one (the extra word occupies
/// the slot one more round, so integrity honestly costs bandwidth).
CongestMessage with_integrity(CongestMessage message);

/// True iff `message` is not checksummed, or its checksum matches its
/// current (tag, payload) content. A payload perturbed in flight fails.
bool integrity_ok(const CongestMessage& message);

class SyncNetwork {
 public:
  explicit SyncNetwork(const Graph& g);

  /// Queues a message for the current round. Throws if the (edge, direction)
  /// was already used this round or is still busy with a multi-word message.
  /// Self-loop messages (from == to) are rejected: CONGEST edges connect
  /// distinct nodes, and a self-loop would alias both directions of the edge
  /// onto one busy slot.
  void send(const CongestMessage& message);

  /// Delivers queued messages; returns messages received per node.
  /// Advances the round counter by 1.
  void step();

  /// Messages delivered to `v` in the most recent step.
  const std::vector<CongestMessage>& inbox(NodeId v) const;

  /// Optional congestion observer; not owned, may be nullptr. Each send is
  /// recorded against its directed slot at queue time (the slot is occupied
  /// from that round on). Callers must reset() it with at least
  /// 2 * graph().num_edges() slots.
  void attach_metrics(NetworkMetrics* metrics) { metrics_ = metrics; }

  std::uint64_t rounds() const { return round_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  /// Checksummed messages whose integrity word failed verification at
  /// delivery; they are quarantined (never reach an inbox), counted here and
  /// on the net.corrupt.detected metric. Always 0 for honest senders on the
  /// clean wire — the fault layer perturbs payloads downstream of this
  /// network, so this guard catches tampering at the source.
  std::uint64_t integrity_dropped() const { return integrity_dropped_; }
  const Graph& graph() const { return graph_; }

 private:
  /// Directed slot index for (edge, direction): 2*edge + (from == edge.v).
  std::size_t slot(EdgeId e, NodeId from) const;

  struct Pending {
    CongestMessage msg;
    std::uint64_t deliver_at = 0;  // round whose step() delivers the message
  };

  const Graph& graph_;
  std::uint64_t round_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t integrity_dropped_ = 0;
  std::vector<std::uint64_t> edge_busy_until_;  // per directed slot
  std::vector<Pending> pending_;                // compacted in place per step
  std::vector<std::vector<CongestMessage>> inboxes_;
  std::vector<std::uint64_t> inbox_epoch_;  // round whose deliveries are held
  NetworkMetrics* metrics_ = nullptr;
};

}  // namespace dls
