// A synchronous CONGEST message layer with per-edge capacity enforcement.
//
// Each round, a node may send one O(log n)-bit message over each incident
// edge (per direction). SyncNetwork::step() validates the capacity
// constraint — violating it throws, which is how the test suite proves our
// distributed algorithms really are CONGEST algorithms — and delivers all
// messages simultaneously, incrementing the round counter.
//
// Messages are a small fixed struct of machine words; `words` declares how
// many O(log n)-bit units the payload occupies, and sending a w-word message
// occupies the edge for w consecutive rounds (enforced via edge busy-until
// bookkeeping).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "graph/graph.hpp"

namespace dls {

struct CongestMessage {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  EdgeId edge = kInvalidEdge;
  std::uint64_t tag = 0;      // algorithm-defined discriminator
  double payload = 0.0;       // one O(log n)-bit word of content
  std::uint32_t words = 1;    // payload size in O(log n)-bit units
};

class SyncNetwork {
 public:
  explicit SyncNetwork(const Graph& g);

  /// Queues a message for the current round. Throws if the (edge, direction)
  /// was already used this round or is still busy with a multi-word message.
  void send(const CongestMessage& message);

  /// Delivers queued messages; returns messages received per node.
  /// Advances the round counter by 1.
  void step();

  /// Messages delivered to `v` in the most recent step.
  const std::vector<CongestMessage>& inbox(NodeId v) const;

  std::uint64_t rounds() const { return round_; }
  std::uint64_t messages_sent() const { return messages_sent_; }
  const Graph& graph() const { return graph_; }

 private:
  /// Directed slot index for (edge, direction): 2*edge + (from == edge.v).
  std::size_t slot(EdgeId e, NodeId from) const;

  const Graph& graph_;
  std::uint64_t round_ = 0;
  std::uint64_t messages_sent_ = 0;
  std::vector<std::uint64_t> edge_busy_until_;  // per directed slot
  std::vector<CongestMessage> pending_;
  std::vector<std::vector<CongestMessage>> inboxes_;
};

}  // namespace dls
