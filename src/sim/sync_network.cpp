#include "sim/sync_network.hpp"

#include <algorithm>

namespace dls {

SyncNetwork::SyncNetwork(const Graph& g)
    : graph_(g),
      edge_busy_until_(2 * g.num_edges(), 0),
      inboxes_(g.num_nodes()) {}

std::size_t SyncNetwork::slot(EdgeId e, NodeId from) const {
  const Edge& edge = graph_.edge(e);
  DLS_REQUIRE(from == edge.u || from == edge.v, "sender is not an endpoint");
  return 2 * static_cast<std::size_t>(e) + (from == edge.v ? 1 : 0);
}

void SyncNetwork::send(const CongestMessage& message) {
  DLS_REQUIRE(message.words >= 1, "message must occupy at least one word");
  DLS_REQUIRE(message.edge < graph_.num_edges(), "unknown edge");
  const Edge& edge = graph_.edge(message.edge);
  DLS_REQUIRE(edge.other(message.from) == message.to,
              "message endpoints must match the edge");
  const std::size_t s = slot(message.edge, message.from);
  DLS_REQUIRE(edge_busy_until_[s] <= round_,
              "CONGEST violation: edge-direction already in use this round");
  edge_busy_until_[s] = round_ + message.words;
  pending_.push_back(message);
  ++messages_sent_;
}

void SyncNetwork::step() {
  for (auto& inbox : inboxes_) inbox.clear();
  ++round_;
  // A w-word message queued at round r is delivered at round r + w (i.e. the
  // step after its last occupied slot). Single-word messages deliver now.
  std::vector<CongestMessage> still_pending;
  for (const CongestMessage& msg : pending_) {
    const std::size_t s = slot(msg.edge, msg.from);
    if (edge_busy_until_[s] <= round_) {
      inboxes_[msg.to].push_back(msg);
    } else {
      still_pending.push_back(msg);
    }
  }
  pending_ = std::move(still_pending);
}

const std::vector<CongestMessage>& SyncNetwork::inbox(NodeId v) const {
  DLS_REQUIRE(v < inboxes_.size(), "node id out of range");
  return inboxes_[v];
}

}  // namespace dls
