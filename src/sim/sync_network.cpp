#include "sim/sync_network.hpp"

#include <algorithm>
#include <cstring>

#include "obs/metrics.hpp"

namespace dls {

std::uint64_t payload_checksum(const CongestMessage& message) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  const auto fold = [&h](std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      h ^= (word >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;  // FNV prime
    }
  };
  fold(message.tag);
  std::uint64_t payload_bits;
  std::memcpy(&payload_bits, &message.payload, sizeof(payload_bits));
  fold(payload_bits);
  return h;
}

CongestMessage with_integrity(CongestMessage message) {
  message.checksum = payload_checksum(message);
  message.checksummed = true;
  ++message.words;  // the integrity word is real bandwidth
  return message;
}

bool integrity_ok(const CongestMessage& message) {
  return !message.checksummed || message.checksum == payload_checksum(message);
}

SyncNetwork::SyncNetwork(const Graph& g)
    : graph_(g),
      edge_busy_until_(2 * g.num_edges(), 0),
      inboxes_(g.num_nodes()),
      inbox_epoch_(g.num_nodes(), 0) {}

std::size_t SyncNetwork::slot(EdgeId e, NodeId from) const {
  const Edge& edge = graph_.edge(e);
  DLS_REQUIRE(from == edge.u || from == edge.v, "sender is not an endpoint");
  return 2 * static_cast<std::size_t>(e) + (from == edge.v ? 1 : 0);
}

void SyncNetwork::send(const CongestMessage& message) {
  DLS_REQUIRE(message.words >= 1, "message must occupy at least one word");
  DLS_REQUIRE(message.edge < graph_.num_edges(), "unknown edge");
  DLS_REQUIRE(message.from != message.to,
              "self-loop message: CONGEST edges connect distinct nodes, and "
              "both directions of a self-loop would alias one busy slot");
  const Edge& edge = graph_.edge(message.edge);
  DLS_REQUIRE(edge.other(message.from) == message.to,
              "message endpoints must match the edge");
  const std::size_t s = slot(message.edge, message.from);
  DLS_REQUIRE(edge_busy_until_[s] <= round_,
              "CONGEST violation: edge-direction already in use this round");
  edge_busy_until_[s] = round_ + message.words;
  pending_.push_back({message, round_ + message.words});
  ++messages_sent_;
  if (metrics_ != nullptr) metrics_->record_send(s, round_, message.words);
}

void SyncNetwork::step() {
  ++round_;
  // A w-word message queued at round r is delivered at round r + w (i.e. the
  // step after its last occupied slot). Single-word messages deliver now.
  // Deliverable messages move into epoch-stamped inboxes; the rest are
  // compacted to the front of pending_ in order, reusing its storage.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Pending& p = pending_[i];
    if (p.deliver_at <= round_) {
      if (!integrity_ok(p.msg)) {
        // Integrity word mismatch: the payload no longer matches what the
        // sender checksummed. Quarantine the message — receivers treat a
        // detected corruption exactly like a loss.
        ++integrity_dropped_;
        static MetricCounter& detected =
            MetricsRegistry::global().counter("net.corrupt.detected");
        detected.increment();
        continue;
      }
      if (inbox_epoch_[p.msg.to] != round_) {
        inbox_epoch_[p.msg.to] = round_;
        inboxes_[p.msg.to].clear();
      }
      inboxes_[p.msg.to].push_back(p.msg);
    } else {
      if (kept != i) pending_[kept] = pending_[i];
      ++kept;
    }
  }
  pending_.resize(kept);
}

const std::vector<CongestMessage>& SyncNetwork::inbox(NodeId v) const {
  DLS_REQUIRE(v < inboxes_.size(), "node id out of range");
  // A node whose inbox was not stamped this round received nothing; its
  // vector may still hold an older round's messages (lazy clearing).
  static const std::vector<CongestMessage> kEmpty;
  if (inbox_epoch_[v] != round_) return kEmpty;
  return inboxes_[v];
}

}  // namespace dls
