// The HYBRID model: CONGEST local edges + NCC global channel in lockstep
// (paper §2, "nodes have both a local and a global communication mode at
// their disposal"). One hybrid round = every node may use each incident
// local edge once AND send/receive up to the NCC capacity globally.
//
// HybridNetwork wires a SyncNetwork and an NccNetwork to a shared round
// counter; hybrid_bfs_with_landmarks demonstrates the model's power: BFS
// where random landmarks exchange distance summaries globally, cutting the
// round count below the graph diameter on high-diameter topologies — the
// qualitative effect behind Theorem 3.
#pragma once

#include "sim/ncc.hpp"
#include "sim/sync_network.hpp"

namespace dls {

class HybridNetwork {
 public:
  explicit HybridNetwork(const Graph& g, std::size_t ncc_capacity = 0);

  /// Queue a local CONGEST message (validated against edge capacity).
  void send_local(const CongestMessage& message);
  /// Queue a global NCC message (validated against sender capacity).
  void send_global(const NccMessage& message);

  /// Delivers both modes simultaneously and advances the shared round.
  void step();

  const std::vector<CongestMessage>& local_inbox(NodeId v) const;
  const std::vector<NccMessage>& global_inbox(NodeId v) const;

  std::uint64_t rounds() const { return rounds_; }
  std::size_t ncc_capacity() const { return ncc_.capacity(); }
  const Graph& graph() const { return local_.graph(); }
  std::uint64_t local_messages() const { return local_.messages_sent(); }
  std::uint64_t global_messages() const { return ncc_.messages_sent(); }
  std::uint64_t global_drops() const { return ncc_.messages_dropped(); }

 private:
  SyncNetwork local_;
  NccNetwork ncc_;
  std::uint64_t rounds_ = 0;
};

struct HybridBfsResult {
  /// Upper-bound distance estimates: every entry is the length of a real
  /// root→v walk (never below the true distance); accuracy is governed by
  /// the Voronoi ball radius R (tests measure the stretch empirically).
  std::vector<std::uint32_t> approx_dist;
  std::uint32_t ball_radius = 0;          // max landmark-Voronoi radius R
  std::uint64_t rounds = 0;               // hybrid rounds used
  std::uint64_t pure_congest_rounds = 0;  // eccentricity + 1, for contrast
  std::size_t landmarks = 0;
};

/// Approximate single-source distances in HYBRID (the Augustine et al. [3]
/// style landmark scheme, simplified): ~√n landmarks plus the root flood
/// their Voronoi cells locally (≈ R rounds); cell boundaries report overlay
/// edges to their landmarks over the global channel (with real drops and
/// retransmissions); landmarks run Bellman–Ford on the overlay globally; a
/// final local flood distributes d̂(root, landmark) through each cell and
/// every node outputs d̂(root, s(v)) + d(s(v), v). Total ≈ 2R + Õ(1) hybrid
/// rounds versus the Θ(D) of pure-CONGEST BFS — the qualitative power of
/// the global channel behind Theorem 3.
HybridBfsResult hybrid_bfs_with_landmarks(const Graph& g, NodeId root, Rng& rng,
                                          std::size_t num_landmarks = 0);

}  // namespace dls
