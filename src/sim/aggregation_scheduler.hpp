// Message-level simulation of simultaneous tree aggregations in CONGEST —
// the engine behind Proposition 6 ("a shortcut of quality Q solves part-wise
// aggregation in Õ(Q) rounds").
//
// Each part P_i aggregates over a communication tree T_i (the BFS tree of
// G[P_i] ∪ H_i). All trees run concurrently over the physical network: per
// round, each (edge, direction) of G carries at most one message, shared
// across all trees. The scheduler simulates convergecast (leaves → root,
// combining values with the aggregation monoid) followed by broadcast
// (root → all tree nodes), and reports exact round counts, the observed edge
// congestion, and tree depths. Contention between trees on an edge is broken
// by a pluggable policy; random priorities implement the random-delay
// scheduling of [19] and are the default (the others exist for the
// scheduling ablation, experiment E14).
//
// Simulator cost: a round costs O(active slots + deliveries), not O(m).
// Per-slot queues live in flat, buffer-reusing scratch (kept thread-local
// across calls), trees are rooted through a CSR adjacency scratch instead of
// per-tree hash maps, and per-round delivery order is ascending directed
// slot — the same order the original std::map-keyed implementation produced,
// so round counts and floating-point fold orders are bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/network_metrics.hpp"
#include "util/random.hpp"

namespace dls {

class FaultPlan;  // sim/fault_injection.hpp

/// A commutative, associative aggregation with identity (Definition 4 allows
/// arbitrary functions; we require a monoid as the paper assumes in practice).
struct AggregationMonoid {
  std::function<double(double, double)> op;
  double identity = 0.0;

  static AggregationMonoid sum();
  static AggregationMonoid min();
  static AggregationMonoid max();
};

/// One part's communication tree. `edges` must form a tree (in the host
/// graph) containing `root` and every node mentioned in `inputs`. Nodes on
/// the tree that carry no input (shortcut Steiner nodes) contribute the
/// identity.
struct AggregationTree {
  NodeId root = kInvalidNode;
  std::vector<EdgeId> edges;
  std::vector<std::pair<NodeId, double>> inputs;
};

enum class SchedulingPolicy {
  kRandomPriority,  // random per-tree priorities (default; Ghaffari '15 style)
  kFifo,            // earliest-ready message first
  kPartOrdered,     // lowest part id first (adversarially bad for fairness)
};

struct AggregationOutcome {
  std::vector<double> results;          // aggregate per tree
  std::uint64_t convergecast_rounds = 0;
  std::uint64_t broadcast_rounds = 0;
  std::uint64_t total_rounds = 0;
  std::size_t max_edge_load = 0;        // max #trees sharing one undirected edge
  std::uint32_t max_tree_depth = 0;     // max hop-depth over all trees
  std::uint64_t messages = 0;

  // Corruption & integrity accounting (all 0 without a FaultPlan).
  std::uint64_t corrupt_injected = 0;   // transmissions the plan perturbed
  std::uint64_t corrupt_detected = 0;   // integrity-checked ⇒ retransmitted
  std::uint64_t corrupt_delivered = 0;  // unprotected ⇒ perturbed the fold
  std::uint64_t integrity_words = 0;    // checksum words shipped (integrity on)

  // Observed congestion (see sim/network_metrics.hpp): per phase, the
  // busiest (edge, direction) slot and the busiest single round.
  PhaseCongestion convergecast_congestion;
  PhaseCongestion broadcast_congestion;
  PhaseCongestion congestion() const {
    return merge_phases(convergecast_congestion, broadcast_congestion);
  }
  /// Messages per simulated round, indexed 1..total_rounds (broadcast rounds
  /// follow convergecast rounds); index 0 is unused.
  std::vector<std::uint64_t> round_histogram;
};

/// Runs all trees to completion and returns exact measured rounds.
/// Preconditions (validated): each tree's edge set is a tree in g containing
/// its root and all input nodes.
///
/// With a FaultPlan (sim/fault_injection.hpp) the scheduler becomes
/// fault-tolerant: each phase opens a new plan epoch, every transmitted
/// message consults the plan at its (round, slot) coordinate, and
///   * dropped messages stay queued — the sender retransmits until one gets
///     through (charged as a real send each attempt);
///   * delayed / duplicated copies ride an in-flight buffer and land in a
///     later round's delivery batch;
///   * duplicate arrivals are deduplicated (convergecast: a per-node
///     received flag; broadcast: the informed flag), so under eventual
///     delivery the fold order — and hence every result bit — matches the
///     fault-free run;
///   * same-round delivery batches are permuted when the plan says reorder
///     (harmless for a commutative monoid; that is the point being tested);
///   * corrupted transmissions (FaultConfig::corrupt_rate) depend on
///     FaultConfig::integrity: with integrity on, every transmission ships a
///     checksum word — each (edge, direction) slot carries one message per
///     TWO rounds and deliveries land a round later — and a corrupted
///     message fails verification at the receiver, behaving exactly like a
///     drop (retransmitted; counted in corrupt_detected). With integrity
///     off, the perturbed payload silently enters the convergecast fold
///     (counted in corrupt_delivered) — the scenario the verify layer's
///     certificates exist to catch;
///   * a phase that exceeds FaultConfig::round_limit throws ChaosAbortError
///     carrying the partial round accounting.
/// All fault handling is gated on `faults != nullptr` and consumes nothing
/// from `rng`, so a null plan is bit-identical to the pre-fault scheduler
/// (pinned by the golden traces).
AggregationOutcome run_tree_aggregations(const Graph& g,
                                         const std::vector<AggregationTree>& trees,
                                         const AggregationMonoid& monoid,
                                         Rng& rng,
                                         SchedulingPolicy policy =
                                             SchedulingPolicy::kRandomPriority,
                                         FaultPlan* faults = nullptr);

/// Sequential ground truth: fold each tree's inputs with the monoid.
std::vector<double> sequential_aggregates(const std::vector<AggregationTree>& trees,
                                          const AggregationMonoid& monoid);

}  // namespace dls
