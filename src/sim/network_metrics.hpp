// Congestion observability for the message plane.
//
// Every simulator in this library moves messages through directed
// (edge, direction) slots — SyncNetwork explicitly, the aggregation
// scheduler through its per-slot queues. NetworkMetrics is the shared
// counter layer both plug into: it keeps per-slot message counters, a
// per-round message histogram, and per-phase peaks, all with O(1) cost per
// recorded message. Phase boundaries use epoch-stamped slot counters so
// starting a new phase never pays an O(#slots) clear — the same trick the
// simulators use for their inboxes and scratch buffers.
//
// The summaries feed RoundLedger entries, which is how a bench or the
// Laplacian solver can report *where* congestion concentrates (the
// ρ-congested part-wise-aggregation story of Definition 13) instead of only
// a final round count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dls {

/// Congestion summary of one accounted phase. All counts are messages that
/// actually crossed an edge (multi-word payloads count their full slot
/// occupancy via `words`).
struct PhaseCongestion {
  std::uint64_t messages = 0;          // messages delivered in the phase
  std::size_t peak_slot_messages = 0;  // busiest (edge, direction) slot
  std::size_t peak_round_messages = 0; // busiest single round

  /// Exact comparison — used by the differential suite to assert that
  /// parallel batch runs reproduce serial accounting bit-for-bit.
  friend bool operator==(const PhaseCongestion&,
                         const PhaseCongestion&) = default;
};

/// Summary of two sequential phases: messages add, peaks take the max (a
/// slot's count does not carry across a phase boundary).
inline PhaseCongestion merge_phases(const PhaseCongestion& a,
                                    const PhaseCongestion& b) {
  PhaseCongestion merged;
  merged.messages = a.messages + b.messages;
  merged.peak_slot_messages =
      a.peak_slot_messages > b.peak_slot_messages ? a.peak_slot_messages
                                                  : b.peak_slot_messages;
  merged.peak_round_messages =
      a.peak_round_messages > b.peak_round_messages ? a.peak_round_messages
                                                    : b.peak_round_messages;
  return merged;
}

class NetworkMetrics {
 public:
  struct Phase {
    std::string label;
    std::uint64_t rounds = 0;
    PhaseCongestion congestion;
  };

  /// Re-arms the counters for a network with `num_slots` directed slots
  /// (2 * num_edges for the simulators here). Keeps buffer capacity.
  void reset(std::size_t num_slots);

  /// Opens a new phase; subsequent record_send calls accumulate into it.
  /// Closing the previous phase (if any) uses the rounds recorded so far.
  void begin_phase(const std::string& label);

  /// Closes the current phase, recording how many rounds it consumed.
  void end_phase(std::uint64_t rounds);

  /// One message crossing `slot` during `round`. Rounds must be
  /// non-decreasing within a phase (both simulators deliver in round order).
  /// `words` is the slot occupancy of the payload in O(log n)-bit units.
  void record_send(std::size_t slot, std::uint64_t round,
                   std::uint32_t words = 1);

  const std::vector<Phase>& phases() const { return phases_; }
  /// Congestion accumulated in the currently open phase.
  const PhaseCongestion& current() const { return current_; }
  /// Sum over all closed phases plus the open one.
  PhaseCongestion totals() const;
  /// Messages per round, indexed by round number, across all phases of this
  /// reset cycle. Rounds that carried no messages read as 0.
  const std::vector<std::uint64_t>& round_histogram() const {
    return round_histogram_;
  }

 private:
  std::vector<std::uint64_t> slot_count_;  // valid iff slot_epoch_ == epoch_
  std::vector<std::uint64_t> slot_epoch_;
  std::uint64_t epoch_ = 0;  // bumped per phase: implicit slot-counter clear

  std::vector<std::uint64_t> round_histogram_;
  std::uint64_t cur_round_ = 0;
  std::uint64_t cur_round_messages_ = 0;

  PhaseCongestion current_;
  bool phase_open_ = false;
  std::string phase_label_;
  std::vector<Phase> phases_;
};

}  // namespace dls
