#include "sim/sim_batch.hpp"

#include <memory>

#include "obs/ledger_clock.hpp"
#include "obs/trace.hpp"
#include "util/assert.hpp"

namespace dls {

std::uint64_t derive_scenario_seed(std::uint64_t root_seed,
                                   std::uint64_t index) {
  // splitmix64 step `index + 1` of the stream anchored at root_seed. The +1
  // keeps scenario 0 distinct from the raw root seed, so a scenario never
  // accidentally shares a stream with a caller that seeded Rng(root_seed).
  std::uint64_t x = root_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t SimBatch::add(std::string label, Task task) {
  DLS_REQUIRE(!finished_, "SimBatch::add after run");
  DLS_REQUIRE(task != nullptr, "SimBatch::add requires a task");
  labels_.push_back(std::move(label));
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

void SimBatch::run(ThreadPool* pool) {
  DLS_REQUIRE(!finished_, "SimBatch::run may be called once");
  outcomes_.resize(tasks_.size());
  // Span tracing follows the same discipline as the ledgers: each scenario
  // writes into a PRIVATE tracer clocked by its private ledger (installed as
  // the scenario's ambient tracer for the duration of the task), and the
  // finished slot traces are absorbed below in index order — never completion
  // order — so the merged span stream is bit-identical for any thread count.
  Tracer* parent = Tracer::ambient();
  std::vector<std::unique_ptr<Tracer>> slot_tracers(tasks_.size());
  if (parent != nullptr) {
    for (auto& tracer : slot_tracers) tracer = std::make_unique<Tracer>();
  }
  parallel_for_each(pool, tasks_.size(), [&](std::size_t i) {
    SimOutcome& out = outcomes_[i];
    out.label = labels_[i];
    out.seed = derive_scenario_seed(root_seed_, i);
    // Install the slot tracer (or nullptr when untraced) unconditionally:
    // with a null pool the task runs on the calling thread, and its spans
    // must not leak straight into the parent tracer.
    Tracer* slot_tracer = parent != nullptr ? slot_tracers[i].get() : nullptr;
    TraceScope scope(slot_tracer);
    ClockScope clock(slot_tracer, ledger_clock(out.ledger));
    ScopedSpan span(slot_tracer, "sim/scenario", SpanKind::kScenario);
    if (span.active()) {
      span.counter("index", i);
      span.note(out.label);
    }
    Rng rng(out.seed);
    tasks_[i](rng, out);
  });
  if (parent != nullptr) {
    ScopedSpan batch_span(parent, "sim/batch", SpanKind::kSession);
    batch_span.counter("scenarios", tasks_.size());
    for (const auto& tracer : slot_tracers) parent->absorb(*tracer);
  }
  finished_ = true;
}

const std::vector<SimOutcome>& SimBatch::outcomes() const {
  DLS_REQUIRE(finished_, "SimBatch::outcomes before run");
  return outcomes_;
}

RoundLedger SimBatch::merged_ledger() const {
  DLS_REQUIRE(finished_, "SimBatch::merged_ledger before run");
  RoundLedger merged;
  for (const SimOutcome& out : outcomes_) {
    merged.absorb(out.ledger, out.label);
  }
  return merged;
}

PhaseCongestion SimBatch::merged_congestion() const {
  DLS_REQUIRE(finished_, "SimBatch::merged_congestion before run");
  PhaseCongestion merged;
  for (const SimOutcome& out : outcomes_) {
    for (const LedgerEntry& e : out.ledger.entries()) {
      merged = merge_phases(merged, e.congestion);
    }
  }
  return merged;
}

}  // namespace dls
