#include "sim/network_metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace dls {

void NetworkMetrics::reset(std::size_t num_slots) {
  if (slot_count_.size() < num_slots) {
    slot_count_.resize(num_slots, 0);
    slot_epoch_.resize(num_slots, 0);
  }
  ++epoch_;
  round_histogram_.clear();
  cur_round_ = 0;
  cur_round_messages_ = 0;
  current_ = {};
  phase_open_ = false;
  phase_label_.clear();
  phases_.clear();
}

void NetworkMetrics::begin_phase(const std::string& label) {
  if (phase_open_) end_phase(cur_round_);
  ++epoch_;  // forget per-slot counts of the previous phase in O(1)
  current_ = {};
  cur_round_ = 0;
  cur_round_messages_ = 0;
  phase_label_ = label;
  phase_open_ = true;
}

void NetworkMetrics::end_phase(std::uint64_t rounds) {
  if (!phase_open_) return;
  current_.peak_round_messages =
      std::max(current_.peak_round_messages,
               static_cast<std::size_t>(cur_round_messages_));
  phases_.push_back({phase_label_, rounds, current_});
  current_ = {};
  phase_open_ = false;
}

void NetworkMetrics::record_send(std::size_t slot, std::uint64_t round,
                                 std::uint32_t words) {
  DLS_ASSERT(slot < slot_count_.size(),
             "NetworkMetrics slot out of range — reset() with enough slots");
  if (slot_epoch_[slot] != epoch_) {
    slot_epoch_[slot] = epoch_;
    slot_count_[slot] = 0;
  }
  slot_count_[slot] += words;
  current_.peak_slot_messages = std::max(
      current_.peak_slot_messages, static_cast<std::size_t>(slot_count_[slot]));
  ++current_.messages;
  if (round != cur_round_) {
    current_.peak_round_messages =
        std::max(current_.peak_round_messages,
                 static_cast<std::size_t>(cur_round_messages_));
    cur_round_ = round;
    cur_round_messages_ = 0;
  }
  ++cur_round_messages_;
  if (round_histogram_.size() <= round) round_histogram_.resize(round + 1, 0);
  ++round_histogram_[round];
}

PhaseCongestion NetworkMetrics::totals() const {
  PhaseCongestion total;
  auto fold = [&total](const PhaseCongestion& c) {
    total.messages += c.messages;
    total.peak_slot_messages =
        std::max(total.peak_slot_messages, c.peak_slot_messages);
    total.peak_round_messages =
        std::max(total.peak_round_messages, c.peak_round_messages);
  };
  for (const Phase& p : phases_) fold(p.congestion);
  if (phase_open_) {
    PhaseCongestion open = current_;
    open.peak_round_messages =
        std::max(open.peak_round_messages,
                 static_cast<std::size_t>(cur_round_messages_));
    fold(open);
  }
  return total;
}

}  // namespace dls
