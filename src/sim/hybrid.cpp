#include "sim/hybrid.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>

#include "graph/algorithms.hpp"

namespace dls {

HybridNetwork::HybridNetwork(const Graph& g, std::size_t ncc_capacity)
    : local_(g), ncc_(g.num_nodes(), ncc_capacity) {}

void HybridNetwork::send_local(const CongestMessage& message) {
  local_.send(message);
}

void HybridNetwork::send_global(const NccMessage& message) {
  ncc_.send(message);
}

void HybridNetwork::step() {
  local_.step();
  ncc_.step();
  ++rounds_;
}

const std::vector<CongestMessage>& HybridNetwork::local_inbox(NodeId v) const {
  return local_.inbox(v);
}

const std::vector<NccMessage>& HybridNetwork::global_inbox(NodeId v) const {
  return ncc_.inbox(v);
}

HybridBfsResult hybrid_bfs_with_landmarks(const Graph& g, NodeId root, Rng& rng,
                                          std::size_t num_landmarks) {
  DLS_REQUIRE(root < g.num_nodes(), "root out of range");
  DLS_REQUIRE(is_connected(g), "hybrid BFS requires a connected graph");
  const std::size_t n = g.num_nodes();
  HybridBfsResult result;
  if (num_landmarks == 0) {
    num_landmarks = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::sqrt(static_cast<double>(n))));
  }
  // Sources: the root plus distinct random landmarks.
  std::vector<NodeId> sources{root};
  {
    const auto perm = rng.permutation(n);
    for (std::size_t i = 0; i < perm.size() && sources.size() < num_landmarks + 1;
         ++i) {
      if (perm[i] != root) sources.push_back(static_cast<NodeId>(perm[i]));
    }
  }
  result.landmarks = sources.size();

  HybridNetwork net(g);

  // --- Phase 1 (local): single multi-source Voronoi flood. Each node
  // forwards one (source-index, distance) tag, so one word per edge per
  // round suffices. Terminates when the frontier empties; the rounds used
  // equal the max cell radius + 1.
  constexpr std::uint32_t kUnset = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> owner(n, kUnset);   // index into `sources`
  std::vector<std::uint32_t> ball_dist(n, kUnset);
  std::vector<NodeId> frontier;
  for (std::uint32_t i = 0; i < sources.size(); ++i) {
    owner[sources[i]] = i;
    ball_dist[sources[i]] = 0;
    frontier.push_back(sources[i]);
  }
  while (!frontier.empty()) {
    for (NodeId v : frontier) {
      for (const Adjacency& a : g.neighbors(v)) {
        // tag = owner index, payload = distance.
        net.send_local({v, a.neighbor, a.edge, owner[v],
                        static_cast<double>(ball_dist[v]), 1});
      }
    }
    net.step();
    std::vector<NodeId> next;
    for (NodeId v = 0; v < n; ++v) {
      if (owner[v] != kUnset) continue;
      for (const CongestMessage& msg : net.local_inbox(v)) {
        const std::uint32_t d = static_cast<std::uint32_t>(msg.payload) + 1;
        if (owner[v] == kUnset || d < ball_dist[v]) {
          owner[v] = static_cast<std::uint32_t>(msg.tag);
          ball_dist[v] = d;
        }
      }
      if (owner[v] != kUnset) next.push_back(v);
    }
    frontier = std::move(next);
  }
  for (std::uint32_t d : ball_dist) {
    result.ball_radius = std::max(result.ball_radius, d);
  }

  // --- Phase 2 (local, 1 round): neighbors exchange (owner, ball_dist) so
  // boundary nodes discover overlay edges between adjacent cells.
  for (NodeId v = 0; v < n; ++v) {
    for (const Adjacency& a : g.neighbors(v)) {
      net.send_local({v, a.neighbor, a.edge, owner[v],
                      static_cast<double>(ball_dist[v]), 1});
    }
  }
  net.step();
  // overlay_report[v]: best (other-cell, length) overlay edges v witnesses.
  std::vector<std::map<std::uint32_t, std::uint32_t>> witness(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const CongestMessage& msg : net.local_inbox(v)) {
      const std::uint32_t other_owner = static_cast<std::uint32_t>(msg.tag);
      if (other_owner == owner[v]) continue;
      const std::uint32_t length =
          ball_dist[v] + static_cast<std::uint32_t>(msg.payload) + 1;
      auto [it, inserted] = witness[v].emplace(other_owner, length);
      if (!inserted) it->second = std::min(it->second, length);
    }
  }

  // --- Phase 3 (global): boundary witnesses report overlay edges to their
  // own landmark; overloaded receivers drop and senders retransmit.
  // Message encoding: tag = other-cell index, payload = length.
  struct Report {
    NodeId to;
    std::uint64_t tag;
    double payload;
  };
  std::vector<std::deque<Report>> outbox(n);
  std::size_t reports_pending = 0;
  for (NodeId v = 0; v < n; ++v) {
    for (const auto& [other, length] : witness[v]) {
      outbox[v].push_back({sources[owner[v]], other,
                           static_cast<double>(length)});
      ++reports_pending;
    }
  }
  // overlay[l]: per landmark, map other-cell -> best length.
  std::vector<std::map<std::uint32_t, std::uint32_t>> overlay(sources.size());
  while (reports_pending > 0) {
    std::vector<std::vector<Report>> attempted(n);
    for (NodeId v = 0; v < n; ++v) {
      const std::size_t batch = std::min(net.ncc_capacity(), outbox[v].size());
      for (std::size_t i = 0; i < batch; ++i) {
        net.send_global({v, outbox[v][i].to, outbox[v][i].tag,
                         outbox[v][i].payload});
        attempted[v].push_back(outbox[v][i]);
      }
      outbox[v].erase(outbox[v].begin(),
                      outbox[v].begin() + static_cast<std::ptrdiff_t>(batch));
    }
    net.step();
    for (std::uint32_t i = 0; i < sources.size(); ++i) {
      for (const NccMessage& msg : net.global_inbox(sources[i])) {
        const std::uint32_t other = static_cast<std::uint32_t>(msg.tag);
        const std::uint32_t length = static_cast<std::uint32_t>(msg.payload);
        auto [it, inserted] = overlay[i].emplace(other, length);
        if (!inserted) it->second = std::min(it->second, length);
      }
    }
    // Retransmit dropped reports.
    for (NodeId v = 0; v < n; ++v) {
      for (const Report& r : attempted[v]) {
        const auto& inbox = net.global_inbox(r.to);
        const bool delivered = std::any_of(
            inbox.begin(), inbox.end(), [&](const NccMessage& m) {
              return m.from == v && m.tag == r.tag && m.payload == r.payload;
            });
        if (delivered) {
          --reports_pending;
        } else {
          outbox[v].push_back(r);
        }
      }
    }
    DLS_ASSERT(net.rounds() < 1024 * 1024, "overlay reporting stalled");
  }

  // --- Phase 4 (global): Bellman–Ford on the overlay from the root's cell
  // (index 0). Each iteration every landmark sends its current estimate to
  // its overlay neighbors, paced by the global capacity.
  std::vector<std::uint32_t> landmark_dist(sources.size(), kUnset);
  landmark_dist[0] = 0;
  bool changed = true;
  std::size_t bf_guard = 0;
  while (changed) {
    DLS_ASSERT(++bf_guard <= sources.size() + 2, "overlay BF diverged");
    changed = false;
    // Deliver each landmark's estimate to all overlay neighbors, possibly
    // over several paced global rounds.
    std::vector<std::deque<Report>> bf_out(n);
    std::size_t pending = 0;
    for (std::uint32_t i = 0; i < sources.size(); ++i) {
      if (landmark_dist[i] == kUnset) continue;
      for (const auto& [other, length] : overlay[i]) {
        bf_out[sources[i]].push_back({sources[other], i,
                                      static_cast<double>(landmark_dist[i] +
                                                          length)});
        ++pending;
      }
    }
    while (pending > 0) {
      std::vector<std::vector<Report>> attempted(n);
      for (NodeId v = 0; v < n; ++v) {
        const std::size_t batch = std::min(net.ncc_capacity(), bf_out[v].size());
        for (std::size_t i = 0; i < batch; ++i) {
          net.send_global({v, bf_out[v][i].to, bf_out[v][i].tag,
                           bf_out[v][i].payload});
          attempted[v].push_back(bf_out[v][i]);
        }
        bf_out[v].erase(bf_out[v].begin(),
                        bf_out[v].begin() + static_cast<std::ptrdiff_t>(batch));
      }
      net.step();
      for (std::uint32_t i = 0; i < sources.size(); ++i) {
        for (const NccMessage& msg : net.global_inbox(sources[i])) {
          const std::uint32_t candidate = static_cast<std::uint32_t>(msg.payload);
          if (landmark_dist[i] == kUnset || candidate < landmark_dist[i]) {
            landmark_dist[i] = candidate;
            changed = true;
          }
        }
      }
      for (NodeId v = 0; v < n; ++v) {
        for (const Report& r : attempted[v]) {
          const auto& inbox = net.global_inbox(r.to);
          const bool delivered = std::any_of(
              inbox.begin(), inbox.end(), [&](const NccMessage& m) {
                return m.from == v && m.tag == r.tag && m.payload == r.payload;
              });
          if (delivered) {
            --pending;
          } else {
            bf_out[v].push_back(r);
          }
        }
      }
      DLS_ASSERT(net.rounds() < 1024 * 1024, "overlay BF reporting stalled");
    }
  }

  // --- Phase 5 (local): each cell floods its landmark's d(root, landmark).
  // Reuse the Voronoi structure: one tag per node again.
  std::vector<std::uint32_t> root_est(n, kUnset);
  frontier.clear();
  for (std::uint32_t i = 0; i < sources.size(); ++i) {
    DLS_ASSERT(landmark_dist[i] != kUnset, "overlay disconnected");
    root_est[sources[i]] = landmark_dist[i];
    frontier.push_back(sources[i]);
  }
  while (!frontier.empty()) {
    for (NodeId v : frontier) {
      for (const Adjacency& a : g.neighbors(v)) {
        if (owner[a.neighbor] == owner[v]) {
          net.send_local({v, a.neighbor, a.edge, 0,
                          static_cast<double>(root_est[v]), 1});
        }
      }
    }
    net.step();
    std::vector<NodeId> next;
    for (NodeId v = 0; v < n; ++v) {
      if (root_est[v] != kUnset) continue;
      for (const CongestMessage& msg : net.local_inbox(v)) {
        root_est[v] = static_cast<std::uint32_t>(msg.payload);
      }
      if (root_est[v] != kUnset) next.push_back(v);
    }
    frontier = std::move(next);
  }

  result.approx_dist.assign(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    result.approx_dist[v] = root_est[v] + ball_dist[v];
  }
  result.approx_dist[root] = 0;
  result.rounds = net.rounds();
  result.pure_congest_rounds =
      static_cast<std::uint64_t>(bfs(g, root).eccentricity()) + 1;
  return result;
}

}  // namespace dls
