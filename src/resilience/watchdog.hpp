// Numerical watchdog for the iterative solvers.
//
// The iteration kernels (linalg/solvers.cpp) and the recursive distributed
// solver (laplacian/recursive_solver.cpp) run against abstract operators —
// including preconditioners formed by crude inner solves and, under fault
// injection, oracles that can abort mid-call. The watchdog sits inside those
// loops and turns silent numerical failure into typed signals:
//
//   * kNonFiniteVector / kNonFiniteScalar — a NaN or Inf escaped a matvec or
//     an inner product; without a guard it poisons every later iterate.
//   * kResidualDivergence — the residual exploded past divergence_factor ×
//     its best value (a broken preconditioner, an asymmetric operator, or
//     eigenbounds that exclude part of the spectrum).
//   * kResidualStagnation — no new residual minimum for stagnation_window
//     iterations: the Krylov directions collapsed (loss of orthogonality,
//     beta drift under the flexible-PCG nonlinearity).
//   * kBetaExplosion — the Polak–Ribière beta left [−beta_limit, beta_limit];
//     the next search direction would be garbage.
//
// The watchdog only *detects*; remediation (restart the recurrence, clamp
// beta, re-estimate eigenbounds, run a refinement pass) is applied by the
// loop that owns the iterates, budgeted through allow_restart(). On a
// healthy run no signal ever fires and the iteration is bit-identical to one
// without a watchdog — the determinism contract docs/RESILIENCE.md pins.
//
// This header deliberately depends on nothing above util/ so the linalg
// kernels can use it without a dependency cycle.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dls {

enum class WatchdogSignal : std::uint8_t {
  kNone,
  kNonFiniteVector,
  kNonFiniteScalar,
  kResidualDivergence,
  kResidualStagnation,
  kBetaExplosion,
  /// A recurrence divisor (pap = pᵀAp or rz = rᵀz in PCG) is non-positive or
  /// so small relative to its numerator that the quotient would blow past
  /// denominator_limit — dividing would poison the step. Raised typed so the
  /// loop restarts (or fails with a recorded trace) instead of silently
  /// breaking with a stale iterate.
  kTinyDenominator,
};

const char* to_string(WatchdogSignal signal);

struct WatchdogConfig {
  bool enabled = true;
  /// Iterations without a new residual minimum before kResidualStagnation.
  /// Deliberately generous: flexible PCG plateaus for a few iterations on
  /// hard instances without being sick, and a false positive costs a restart
  /// (extra charged matvec) on an otherwise healthy run.
  std::size_t stagnation_window = 25;
  /// kResidualDivergence when rel > divergence_factor * best rel so far.
  double divergence_factor = 1e4;
  /// |Polak–Ribière beta| above this is kBetaExplosion.
  double beta_limit = 1e8;
  /// check_denominator raises kTinyDenominator when |numerator| exceeds
  /// denominator_limit × denominator (or the denominator is not positive).
  /// Healthy PCG steps have |alpha| = rz/pap within a few orders of
  /// magnitude of 1, so the default never trips on a sound recurrence.
  double denominator_limit = 1e14;
  /// Restarts the owning loop may spend per solve before giving up.
  std::size_t max_restarts = 3;
  /// Append one iterative-refinement pass to a solve on which any signal
  /// fired (recompute the true residual, solve the correction, add it back).
  bool refine_on_anomaly = true;
};

/// One fired signal, tagged with the iteration it fired at.
struct WatchdogIncident {
  std::size_t iteration = 0;
  WatchdogSignal signal = WatchdogSignal::kNone;

  friend bool operator==(const WatchdogIncident&,
                         const WatchdogIncident&) = default;
};

struct WatchdogReport {
  std::vector<WatchdogIncident> incidents;  // every signal, in firing order
  std::size_t restarts = 0;                 // remediations actually applied
  std::size_t refinements = 0;              // refinement passes appended
  std::size_t rebounds = 0;                 // eigenbound re-estimations
  bool gave_up = false;  // restart budget exhausted while signals persisted

  std::size_t anomalies() const { return incidents.size(); }
  bool triggered() const { return !incidents.empty(); }
};

/// True iff every entry is finite. (Vec is std::vector<double>; spelled
/// concretely here to keep this header below linalg in the layering.)
bool all_finite(const std::vector<double>& v);

class NumericalWatchdog {
 public:
  explicit NumericalWatchdog(const WatchdogConfig& config = {});

  /// Observation hooks: each returns the signal it raised (kNone when
  /// healthy or the watchdog is disabled) and records it in the report.
  WatchdogSignal check_vector(const std::vector<double>& v,
                              std::size_t iteration);
  WatchdogSignal check_scalar(double value, std::size_t iteration);
  WatchdogSignal observe_residual(double relative_residual,
                                  std::size_t iteration);
  WatchdogSignal observe_beta(double beta, std::size_t iteration);
  /// Guards a division numerator/denominator in the recurrence: raises
  /// kTinyDenominator when the denominator is non-positive or the quotient
  /// magnitude would exceed denominator_limit.
  WatchdogSignal check_denominator(double numerator, double denominator,
                                   std::size_t iteration);

  /// True (and consumes one unit of budget) iff a restart may be applied;
  /// once the budget is gone the report is marked gave_up and the owning
  /// loop must fail typed instead of looping on a sick recurrence.
  bool allow_restart();
  void note_refinement() { ++report_.refinements; }
  void note_rebound() { ++report_.rebounds; }

  /// Forget the residual history (after a restart: the recurrence was reset,
  /// so stagnation/divergence must be judged against the new trajectory).
  void reset_residual_tracking();

  const WatchdogConfig& config() const { return config_; }
  const WatchdogReport& report() const { return report_; }
  bool triggered() const { return report_.triggered(); }

 private:
  WatchdogSignal raise(WatchdogSignal signal, std::size_t iteration);

  WatchdogConfig config_;
  WatchdogReport report_;
  double best_rel_ = -1.0;  // < 0: no residual observed yet
  std::size_t since_improvement_ = 0;
};

}  // namespace dls
