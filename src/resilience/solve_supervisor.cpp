#include "resilience/solve_supervisor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/trace.hpp"
#include "sim/fault_injection.hpp"

namespace dls {

const char* to_string(SupervisorMode mode) {
  switch (mode) {
    case SupervisorMode::kOff: return "off";
    case SupervisorMode::kRetry: return "retry";
    case SupervisorMode::kDegrade: return "degrade";
  }
  return "?";
}

SupervisorMode supervisor_mode_from_string(const std::string& name) {
  if (name == "off") return SupervisorMode::kOff;
  if (name == "retry") return SupervisorMode::kRetry;
  if (name == "degrade") return SupervisorMode::kDegrade;
  throw std::invalid_argument("unknown supervisor mode '" + name +
                              "' (expected off|retry|degrade)");
}

SupervisedPaOracle::SupervisedPaOracle(CongestedPaOracle& primary,
                                       SupervisorConfig config)
    : CongestedPaOracle(primary.graph()),
      primary_(primary),
      config_(config),
      jitter_rng_(config.jitter_seed),
      fallback_rng_(jitter_rng_.fork()) {
  DLS_REQUIRE(config_.initial_backoff > 0, "initial_backoff must be positive");
  DLS_REQUIRE(config_.max_backoff >= config_.initial_backoff,
              "max_backoff must be >= initial_backoff");
}

void SupervisedPaOracle::bump_tier(EscalationTier t) {
  if (static_cast<int>(t) > static_cast<int>(tier_)) tier_ = t;
}

CongestedPaOracle::Measured SupervisedPaOracle::attempt_measure(
    CongestedPaOracle& oracle, const PartCollection& pc) {
  // Friend access: the ladder is the one sanctioned external caller of the
  // wrapped oracles' protected measure().
  return oracle.measure(pc);
}

std::uint64_t SupervisedPaOracle::charge_backoff(std::uint32_t attempt) {
  // initial_backoff · 2^(attempt-1), capped; saturate the shift so absurd
  // budgets cannot overflow.
  std::uint64_t wait = config_.max_backoff;
  if (attempt - 1 < 32) {
    wait = std::min<std::uint64_t>(
        config_.max_backoff,
        static_cast<std::uint64_t>(config_.initial_backoff) << (attempt - 1));
  }
  // Additive seeded jitter in [0, wait): retries of concurrent instances
  // decorrelate instead of re-colliding in lockstep, yet the draw sequence —
  // and therefore the whole recovery trace — replays from jitter_seed.
  wait += jitter_rng_.next_below(std::max<std::uint64_t>(wait, 1));
  ledger().charge_local(wait, "supervisor/backoff");
  return wait;
}

bool SupervisedPaOracle::note_certificate_failure(std::uint64_t subject,
                                                  std::uint64_t rounds_lost,
                                                  const std::string& detail) {
  ++certificate_failures_;
  RecoveryEvent event;
  event.action = RecoveryAction::kCertificateResolve;
  event.subject = subject;
  event.attempt = static_cast<std::uint32_t>(certificate_failures_);
  event.rounds_lost = rounds_lost;
  event.detail = detail;
  ledger().record_recovery(std::move(event));
  bump_tier(EscalationTier::kRetry);
  if (config_.mode != SupervisorMode::kDegrade || degraded()) {
    return degraded();
  }
  if (certificate_failures_ <= config_.certificate_failure_budget) return false;
  // The PA-call cross-checks passed and the certificate still failed —
  // repeatedly. Stop trusting the primary's substrate altogether.
  if (!fallback_) {
    fallback_ = std::make_unique<BaselinePaOracle>(graph(), fallback_rng_);
  }
  RecoveryEvent degrade;
  degrade.action = RecoveryAction::kDegrade;
  degrade.subject = subject;
  degrade.attempt = static_cast<std::uint32_t>(certificate_failures_);
  degrade.rounds_lost = 0;
  degrade.detail = "certificate failure budget exhausted: " + detail;
  ledger().record_recovery(std::move(degrade));
  bump_tier(EscalationTier::kDegrade);
  return true;
}

CongestedPaOracle::Measured SupervisedPaOracle::measure(
    const PartCollection& pc) {
  if (config_.mode == SupervisorMode::kOff) {
    return attempt_measure(primary_, pc);
  }
  const InstanceId subject = measuring_instance();
  // The ladder span collects every recovery transition of this measurement:
  // RoundLedger::record_recovery annotates the innermost open ambient span,
  // which is exactly this one while the ladder runs.
  ScopedSpan ladder_span(Tracer::ambient(), "supervisor/measure",
                         SpanKind::kRecovery);
  ladder_span.counter("instance", subject);
  // Once degraded, stay degraded: the primary's substrate is suspect for the
  // remainder of the solve, so later instances go straight to the baseline.
  if (degraded()) {
    DLS_ASSERT(fallback_ != nullptr, "degraded without a fallback oracle");
    if (ladder_span.active()) ladder_span.note("already degraded: " + fallback_->name());
    return attempt_measure(*fallback_, pc);
  }
  // Charges a wedged attempt's simulated rounds — real work the network did
  // before aborting — and returns them for the recovery record.
  const auto charge_lost = [this](const ChaosAbortError& e,
                                  const std::string& label) {
    const std::uint64_t lost =
        e.ledger().total_local() + e.ledger().total_global();
    if (lost > 0) ledger().charge_local(lost, label);
    return lost;
  };
  std::string last_error;

  // Rung 1 — retry with jittered backoff. Attempt 0 is the initial try;
  // each re-attempt records a kRetry event carrying the rounds the failed
  // attempt burned plus the backoff wait before trying again.
  for (std::uint32_t attempt = 0; attempt <= config_.retry_budget; ++attempt) {
    try {
      return attempt_measure(primary_, pc);
    } catch (const ChaosAbortError& e) {
      last_error = e.what();
      std::uint64_t lost = charge_lost(e, "supervisor/failed-attempt");
      if (attempt < config_.retry_budget) {
        lost += charge_backoff(attempt + 1);
        RecoveryEvent event;
        event.action = RecoveryAction::kRetry;
        event.subject = subject;
        event.attempt = attempt + 1;
        event.rounds_lost = lost;
        event.detail = last_error;
        ledger().record_recovery(std::move(event));
        bump_tier(EscalationTier::kRetry);
      }
    }
  }

  // Rung 2 — rebuild. measure() re-runs the primary's full construction
  // pipeline (heavy paths, layered graph, shortcut scheduling) on a fresh
  // fault-plan epoch, so each rebuild is a from-scratch structure, not a
  // replay of the wedged one. Backoff resets with the fresh structure.
  for (std::uint32_t rebuild = 1;
       rebuild <= static_cast<std::uint32_t>(config_.rebuild_budget);
       ++rebuild) {
    const std::uint64_t waited = charge_backoff(1);
    RecoveryEvent event;
    event.action = RecoveryAction::kRebuild;
    event.subject = subject;
    event.attempt = rebuild;
    event.rounds_lost = waited;
    event.detail = "rebuild shortcut structure: " + last_error;
    ledger().record_recovery(std::move(event));
    bump_tier(EscalationTier::kRebuild);
    try {
      return attempt_measure(primary_, pc);
    } catch (const ChaosAbortError& e) {
      last_error = e.what();
      charge_lost(e, "supervisor/failed-rebuild");
    }
  }

  if (config_.mode == SupervisorMode::kRetry) {
    // Ladder capped before rung 3: record the give-up and surface the
    // failure; the solver may still recover via checkpoint restore.
    RecoveryEvent event;
    event.action = RecoveryAction::kAbort;
    event.subject = subject;
    event.attempt = static_cast<std::uint32_t>(config_.retry_budget +
                                               config_.rebuild_budget);
    event.rounds_lost = 0;
    event.detail = "retry+rebuild budget exhausted: " + last_error;
    ledger().record_recovery(std::move(event));
    throw ChaosAbortError(
        "supervisor: retry budget exhausted for PA instance " +
            std::to_string(subject) + " (" + last_error + ")",
        ledger());
  }

  // Rung 3 — degrade to the spanning-tree baseline for the rest of the
  // solve. The baseline attaches no fault plan, so it is fault-free by
  // construction here; its costs are measured and charged as usual.
  if (!fallback_) {
    fallback_ = std::make_unique<BaselinePaOracle>(graph(), fallback_rng_);
  }
  RecoveryEvent event;
  event.action = RecoveryAction::kDegrade;
  event.subject = subject;
  event.attempt = 0;
  event.rounds_lost = 0;
  event.detail = primary_.name() + " -> " + fallback_->name() + ": " +
                 last_error;
  ledger().record_recovery(std::move(event));
  bump_tier(EscalationTier::kDegrade);
  return attempt_measure(*fallback_, pc);
}

}  // namespace dls
