// Checkpoint/resume for the solver's outer iteration.
//
// Under fault injection a ChaosAbortError can fire inside any PA oracle call
// — including deep into a long PCG run. Without checkpoints the whole solve
// restarts from iteration 0 and every already-charged round is wasted; with
// them, the outer loop snapshots its full recurrence state (x, r, p, z, rz,
// the residual history, and the solve-time rng cursor) every `interval`
// iterations and a caught abort resumes from the last snapshot.
//
// Accounting is honest by construction: the rounds of the failed attempt are
// charged from the abort's partial ledger by the caller, a snapshot charges
// one local exchange when it is taken (every node stashes O(1) words — its
// own coordinates of the iterates — so a checkpoint is one round of local
// stabilization), and the iterations replayed after a restore re-charge
// their PA calls exactly as the first execution did. The replayed gap is
// additionally recorded as a RecoveryEvent so ledgers show *why* totals grew.
//
// Determinism: with interval == 0 (the default) nothing is snapshotted and
// the solver's behaviour — every charge, every value — is bit-identical to a
// build without this file. With checkpointing on, the snapshots themselves
// never perturb the iterates (they are copies), so x is unchanged; only the
// ledger gains the per-snapshot exchange rounds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/random.hpp"

namespace dls {

/// Full outer-iteration state of the flexible-PCG recurrence. Vectors are
/// node-indexed doubles (Vec in linalg; spelled concretely to stay below the
/// linalg layer).
struct SolverCheckpoint {
  std::size_t iteration = 0;  // completed outer iterations at snapshot time
  std::vector<double> x;
  std::vector<double> r;
  std::vector<double> r_prev;
  std::vector<double> p;
  std::vector<double> z;
  double rz = 0.0;
  std::vector<double> residual_history;  // per-iteration rel residuals so far
  Rng rng{0};  // solve-time rng cursor (replayed draws must match)
};

struct CheckpointConfig {
  /// Snapshot every `interval` completed outer iterations; 0 disables
  /// checkpointing entirely (bit-identical to a solver without it).
  std::size_t interval = 0;
  /// How many restores one solve may spend before degrading. A budget (not
  /// unlimited) so a schedule that aborts every attempt terminates typed.
  std::size_t resume_budget = 3;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(const CheckpointConfig& config = {});

  bool enabled() const { return config_.interval > 0; }

  /// True iff a snapshot is due after `completed_iterations` iterations.
  bool due(std::size_t completed_iterations) const;

  void save(SolverCheckpoint snapshot);

  /// True iff a restore is possible: budget remains (restoring to iteration
  /// 0 with no snapshot yet is a valid resume — it replays from scratch).
  bool can_restore() const { return enabled() && restores_ < config_.resume_budget; }

  /// Consumes one unit of resume budget and returns the snapshot to resume
  /// from (nullptr = resume from iteration 0: nothing snapshotted yet).
  /// Call can_restore() first; restoring past the budget is a logic error.
  const SolverCheckpoint* restore();

  const CheckpointConfig& config() const { return config_; }
  /// The last saved snapshot without consuming budget (nullptr if none) —
  /// the degraded path reports its best partial iterate from here.
  const SolverCheckpoint* latest() const { return last_ ? &*last_ : nullptr; }
  std::size_t saves() const { return saves_; }
  std::size_t restores() const { return restores_; }
  /// Iterations the last restore rewound past (the replayed gap):
  /// iterations completed at abort time minus the snapshot's iteration.
  std::size_t replayed_gap(std::size_t aborted_at) const;

 private:
  CheckpointConfig config_;
  std::optional<SolverCheckpoint> last_;
  std::size_t saves_ = 0;
  std::size_t restores_ = 0;
};

}  // namespace dls
