// Typed recovery outcomes for self-healing solves.
//
// Theorem 28 parameterises the solver by a congested-PA oracle (Assumption
// 27); the oracle boundary is therefore where recovery and degradation
// policy mounts. This header names the rungs of that policy — the
// *escalation ladder* — and the typed partial result a solve returns when
// every rung is exhausted, instead of dying with an unhandled exception:
//
//   kNone        clean solve, no recovery needed
//   kRetry       a PA call was re-attempted after a ChaosAbortError
//   kRebuild     the shortcut structure was rebuilt before re-attempting
//   kDegrade     the oracle was demoted to the spanning-tree baseline for
//                the remainder of the solve
//   kCheckpoint  the outer iteration resumed from a checkpoint
//   kExhausted   every budget spent; the solve is degraded (partial result)
//
// The ladder's transitions are recorded as RecoveryEvents on the RoundLedger
// (sim/round_ledger.hpp); RecoveryCounters folds that trace into the summary
// numbers the stats tables and LevelStats print.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/round_ledger.hpp"

namespace dls {

enum class EscalationTier : std::uint8_t {
  kNone,
  kRetry,
  kRebuild,
  kDegrade,
  kCheckpoint,
  kExhausted,
};

const char* to_string(EscalationTier tier);

/// Summary counters over a ledger's recovery trace.
struct RecoveryCounters {
  std::size_t retries = 0;
  std::size_t rebuilds = 0;
  std::size_t degradations = 0;
  std::size_t checkpoints_saved = 0;
  std::size_t checkpoints_restored = 0;
  std::size_t watchdog_restarts = 0;
  std::size_t watchdog_refinements = 0;
  std::size_t watchdog_rebounds = 0;
  std::size_t certificate_resolves = 0;  // solves re-run after a rejected cert
  std::uint64_t rounds_lost = 0;  // simulated work charged to failed attempts

  bool any() const {
    return retries + rebuilds + degradations + checkpoints_saved +
               checkpoints_restored + watchdog_restarts +
               watchdog_refinements + watchdog_rebounds +
               certificate_resolves >
           0;
  }

  friend bool operator==(const RecoveryCounters&,
                         const RecoveryCounters&) = default;
};

/// Folds a ledger's recovery events into counters.
RecoveryCounters tally_recovery(const RoundLedger& ledger);

/// The highest escalation tier a ledger's recovery trace reached.
EscalationTier highest_tier(const RoundLedger& ledger);

/// Typed partial result of a solve whose recovery budget ran out. Never
/// thrown — returned inside the solve report so callers branch on a value,
/// not a catch block.
struct DegradedResult {
  EscalationTier tier = EscalationTier::kExhausted;  // rung reached at give-up
  std::string reason;            // human-readable: what exhausted, where
  std::size_t completed_iterations = 0;  // outer iterations of the partial x
  double partial_residual = 0.0;  // relative residual of the partial x
};

}  // namespace dls
