#include "resilience/checkpoint.hpp"

#include "obs/metrics.hpp"
#include "util/assert.hpp"

namespace dls {

CheckpointManager::CheckpointManager(const CheckpointConfig& config)
    : config_(config) {}

bool CheckpointManager::due(std::size_t completed_iterations) const {
  if (!enabled() || completed_iterations == 0) return false;
  if (last_.has_value() && last_->iteration >= completed_iterations) {
    return false;  // already snapshotted here (e.g. right after a restore)
  }
  return completed_iterations % config_.interval == 0;
}

void CheckpointManager::save(SolverCheckpoint snapshot) {
  DLS_REQUIRE(enabled(), "checkpointing is disabled (interval == 0)");
  last_ = std::move(snapshot);
  ++saves_;
  static MetricCounter& save_metric =
      MetricsRegistry::global().counter("checkpoint.saves");
  save_metric.increment();
}

const SolverCheckpoint* CheckpointManager::restore() {
  DLS_ASSERT(can_restore(), "checkpoint resume budget exhausted");
  ++restores_;
  static MetricCounter& restore_metric =
      MetricsRegistry::global().counter("checkpoint.restores");
  restore_metric.increment();
  return last_.has_value() ? &*last_ : nullptr;
}

std::size_t CheckpointManager::replayed_gap(std::size_t aborted_at) const {
  const std::size_t base = last_.has_value() ? last_->iteration : 0;
  return aborted_at > base ? aborted_at - base : 0;
}

}  // namespace dls
