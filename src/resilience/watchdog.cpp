#include "resilience/watchdog.hpp"

#include <cmath>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dls {

const char* to_string(WatchdogSignal signal) {
  switch (signal) {
    case WatchdogSignal::kNone: return "none";
    case WatchdogSignal::kNonFiniteVector: return "non-finite-vector";
    case WatchdogSignal::kNonFiniteScalar: return "non-finite-scalar";
    case WatchdogSignal::kResidualDivergence: return "residual-divergence";
    case WatchdogSignal::kResidualStagnation: return "residual-stagnation";
    case WatchdogSignal::kBetaExplosion: return "beta-explosion";
    case WatchdogSignal::kTinyDenominator: return "tiny-denominator";
  }
  return "?";
}

bool all_finite(const std::vector<double>& v) {
  for (double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

NumericalWatchdog::NumericalWatchdog(const WatchdogConfig& config)
    : config_(config) {}

WatchdogSignal NumericalWatchdog::raise(WatchdogSignal signal,
                                        std::size_t iteration) {
  report_.incidents.push_back({iteration, signal});
  static MetricCounter& signal_metric =
      MetricsRegistry::global().counter("watchdog.signals");
  signal_metric.increment();
  if (Tracer* tracer = Tracer::ambient()) {
    tracer->annotate_current(std::string("watchdog: ") + to_string(signal) +
                             " at iteration " + std::to_string(iteration));
  }
  return signal;
}

WatchdogSignal NumericalWatchdog::check_vector(const std::vector<double>& v,
                                               std::size_t iteration) {
  if (!config_.enabled || all_finite(v)) return WatchdogSignal::kNone;
  return raise(WatchdogSignal::kNonFiniteVector, iteration);
}

WatchdogSignal NumericalWatchdog::check_scalar(double value,
                                               std::size_t iteration) {
  if (!config_.enabled || std::isfinite(value)) return WatchdogSignal::kNone;
  return raise(WatchdogSignal::kNonFiniteScalar, iteration);
}

WatchdogSignal NumericalWatchdog::observe_residual(double relative_residual,
                                                   std::size_t iteration) {
  if (!config_.enabled) return WatchdogSignal::kNone;
  if (!std::isfinite(relative_residual)) {
    return raise(WatchdogSignal::kNonFiniteScalar, iteration);
  }
  if (best_rel_ < 0.0) {
    best_rel_ = relative_residual;
    since_improvement_ = 0;
    return WatchdogSignal::kNone;
  }
  if (relative_residual > config_.divergence_factor * best_rel_) {
    return raise(WatchdogSignal::kResidualDivergence, iteration);
  }
  if (relative_residual < best_rel_) {
    best_rel_ = relative_residual;
    since_improvement_ = 0;
    return WatchdogSignal::kNone;
  }
  if (++since_improvement_ >= config_.stagnation_window) {
    return raise(WatchdogSignal::kResidualStagnation, iteration);
  }
  return WatchdogSignal::kNone;
}

WatchdogSignal NumericalWatchdog::observe_beta(double beta,
                                               std::size_t iteration) {
  if (!config_.enabled) return WatchdogSignal::kNone;
  if (!std::isfinite(beta)) {
    return raise(WatchdogSignal::kNonFiniteScalar, iteration);
  }
  if (std::abs(beta) > config_.beta_limit) {
    return raise(WatchdogSignal::kBetaExplosion, iteration);
  }
  return WatchdogSignal::kNone;
}

WatchdogSignal NumericalWatchdog::check_denominator(double numerator,
                                                    double denominator,
                                                    std::size_t iteration) {
  if (!config_.enabled) return WatchdogSignal::kNone;
  if (!std::isfinite(numerator) || !std::isfinite(denominator)) {
    return raise(WatchdogSignal::kNonFiniteScalar, iteration);
  }
  if (denominator <= 0.0 ||
      std::abs(numerator) > config_.denominator_limit * denominator) {
    return raise(WatchdogSignal::kTinyDenominator, iteration);
  }
  return WatchdogSignal::kNone;
}

bool NumericalWatchdog::allow_restart() {
  if (report_.restarts >= config_.max_restarts) {
    report_.gave_up = true;
    return false;
  }
  ++report_.restarts;
  static MetricCounter& restart_metric =
      MetricsRegistry::global().counter("watchdog.restarts");
  restart_metric.increment();
  return true;
}

void NumericalWatchdog::reset_residual_tracking() {
  best_rel_ = -1.0;
  since_improvement_ = 0;
}

}  // namespace dls
