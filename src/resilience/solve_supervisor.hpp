// SolveSupervisor: the escalation ladder at the PA-oracle boundary.
//
// Theorem 28 frames the Laplacian solver as *any* algorithm parameterised by
// a congested-PA oracle (Assumption 27). SupervisedPaOracle exploits exactly
// that: it is itself a CongestedPaOracle whose measure() wraps a primary
// oracle (normally ShortcutPaOracle, possibly carrying a FaultPlan) with a
// recovery ladder, so the solver above it needs no fault-handling code for
// oracle-call failures — it just talks to Assumption 27 as always:
//
//   rung 1  RETRY    — re-attempt the PA call, up to retry_budget times,
//                      with exponential backoff whose per-attempt jitter is
//                      drawn from a seeded stream (deterministic, yet
//                      decorrelated across instances and attempts). Failed
//                      attempts and backoff waits are charged to the ledger.
//   rung 2  REBUILD  — rebuild the shortcut structure for the affected parts
//                      (the primary re-runs its construction from a fresh
//                      fork of its stream) and re-attempt, up to
//                      rebuild_budget times; backoff resets.
//   rung 3  DEGRADE  — demote to the spanning-tree BaselinePaOracle for this
//                      call and the remainder of the solve. The baseline
//                      pays Θ(D + batch)-type rounds but runs fault-free —
//                      availability bought with the round complexity the
//                      paper improves on.
//
// mode kOff forwards straight through (a transparent wrapper), kRetry stops
// the ladder after rung 1 and rethrows, kDegrade runs all three rungs and
// never throws ChaosAbortError out of a measure.
//
// Every transition is recorded as a typed RecoveryEvent on THIS oracle's
// ledger (the one the solver charges), subject = the PA instance id, so the
// solver can attribute recoveries to chain levels. Determinism: the jitter
// stream is seeded from config; given (fault seed, supervisor config) the
// whole recovery path replays bit-identically, and with a null FaultPlan the
// primary never throws, the ladder never engages, and every trace is
// bit-identical to the unsupervised oracle.
#pragma once

#include <memory>
#include <string>

#include "laplacian/pa_oracle.hpp"
#include "resilience/recovery.hpp"

namespace dls {

enum class SupervisorMode : std::uint8_t {
  kOff,      // transparent: failures propagate
  kRetry,    // rung 1 only; rethrows when the retry budget is spent
  kDegrade,  // full ladder; measure() never throws ChaosAbortError
};

const char* to_string(SupervisorMode mode);
/// Parses "off" | "retry" | "degrade" (the --supervisor flag values);
/// throws std::invalid_argument on anything else.
SupervisorMode supervisor_mode_from_string(const std::string& name);

struct SupervisorConfig {
  SupervisorMode mode = SupervisorMode::kDegrade;
  std::size_t retry_budget = 3;    // rung-1 re-attempts per PA call
  std::size_t rebuild_budget = 1;  // rung-2 rebuilds per PA call
  /// Backoff before attempt k waits initial_backoff · 2^(k-1) rounds, capped
  /// at max_backoff, plus jitter drawn uniformly from [0, wait) — seeded, so
  /// retries decorrelate without losing replayability.
  std::uint32_t initial_backoff = 1;
  std::uint32_t max_backoff = 32;
  std::uint64_t jitter_seed = 0x5EED0BACC0FFULL;
  /// Certificate failures (note_certificate_failure) tolerated before a
  /// kDegrade-mode supervisor stops trusting the primary's substrate and
  /// demotes to the baseline. End-to-end certificates (verify/
  /// certified_solve.hpp) detect corruption that slipped *past* the PA-call
  /// cross-checks, so repeated failures indict the whole primary path.
  std::size_t certificate_failure_budget = 1;
};

class SupervisedPaOracle final : public CongestedPaOracle {
 public:
  /// `primary` must outlive this oracle. The degradation fallback (a
  /// BaselinePaOracle over the same graph) is owned here, on a stream forked
  /// deterministically from jitter_seed.
  SupervisedPaOracle(CongestedPaOracle& primary, SupervisorConfig config = {});

  std::string name() const override {
    return "supervised(" + primary_.name() + ")";
  }

  const SupervisorConfig& config() const { return config_; }
  /// Highest ladder rung engaged so far (kDegrade is sticky for the
  /// remainder of this oracle's life — the fallback serves all later calls).
  EscalationTier tier() const { return tier_; }
  bool degraded() const { return tier_ == EscalationTier::kDegrade; }
  /// Summary of this oracle's recovery trace (folds the ledger's events).
  RecoveryCounters counters() const { return tally_recovery(ledger()); }

  /// Escalation entry point for the certified-solve layer: records that an
  /// end-to-end solve certificate over this oracle's answers was rejected.
  /// Once more than certificate_failure_budget failures accumulate, a
  /// kDegrade-mode supervisor demotes to the baseline (sticky, like any
  /// degradation) and the call returns true; otherwise false. The failure is
  /// recorded as a kCertificateResolve event either way, so the ledger's
  /// recovery trace accounts for every certificate-triggered re-solve.
  bool note_certificate_failure(std::uint64_t subject, std::uint64_t rounds_lost,
                                const std::string& detail);
  std::size_t certificate_failures() const { return certificate_failures_; }

 protected:
  Measured measure(const PartCollection& pc) override;

 private:
  /// One ladder attempt against `oracle`; rounds of a failed attempt are
  /// charged and recorded before rethrowing decisions are made.
  Measured attempt_measure(CongestedPaOracle& oracle, const PartCollection& pc);
  /// Charges the exponential-backoff wait (with seeded jitter) before
  /// re-attempt number `attempt` (1-based) and returns the rounds waited.
  std::uint64_t charge_backoff(std::uint32_t attempt);
  void bump_tier(EscalationTier t);

  CongestedPaOracle& primary_;
  SupervisorConfig config_;
  Rng jitter_rng_;
  Rng fallback_rng_;  // owned stream for fallback_ (declared before it)
  std::unique_ptr<BaselinePaOracle> fallback_;
  EscalationTier tier_ = EscalationTier::kNone;
  std::size_t certificate_failures_ = 0;
};

}  // namespace dls
