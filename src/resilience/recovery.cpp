#include "resilience/recovery.hpp"

namespace dls {

const char* to_string(EscalationTier tier) {
  switch (tier) {
    case EscalationTier::kNone: return "none";
    case EscalationTier::kRetry: return "retry";
    case EscalationTier::kRebuild: return "rebuild";
    case EscalationTier::kDegrade: return "degrade";
    case EscalationTier::kCheckpoint: return "checkpoint";
    case EscalationTier::kExhausted: return "exhausted";
  }
  return "?";
}

RecoveryCounters tally_recovery(const RoundLedger& ledger) {
  RecoveryCounters counters;
  for (const RecoveryEvent& e : ledger.recovery_events()) {
    counters.rounds_lost += e.rounds_lost;
    switch (e.action) {
      case RecoveryAction::kRetry: ++counters.retries; break;
      case RecoveryAction::kRebuild: ++counters.rebuilds; break;
      case RecoveryAction::kDegrade: ++counters.degradations; break;
      case RecoveryAction::kCheckpointSave: ++counters.checkpoints_saved; break;
      case RecoveryAction::kCheckpointRestore:
        ++counters.checkpoints_restored;
        break;
      case RecoveryAction::kWatchdogRestart: ++counters.watchdog_restarts; break;
      case RecoveryAction::kWatchdogRefine:
        ++counters.watchdog_refinements;
        break;
      case RecoveryAction::kWatchdogRebound: ++counters.watchdog_rebounds; break;
      case RecoveryAction::kCertificateResolve:
        ++counters.certificate_resolves;
        break;
      case RecoveryAction::kAbort: break;  // counted via the tier, not here
    }
  }
  return counters;
}

EscalationTier highest_tier(const RoundLedger& ledger) {
  EscalationTier tier = EscalationTier::kNone;
  const auto bump = [&tier](EscalationTier t) {
    if (static_cast<int>(t) > static_cast<int>(tier)) tier = t;
  };
  for (const RecoveryEvent& e : ledger.recovery_events()) {
    switch (e.action) {
      case RecoveryAction::kRetry: bump(EscalationTier::kRetry); break;
      // A certificate-triggered re-solve is the certified wrapper's retry
      // rung: same position in the ladder, different detector.
      case RecoveryAction::kCertificateResolve:
        bump(EscalationTier::kRetry);
        break;
      case RecoveryAction::kRebuild: bump(EscalationTier::kRebuild); break;
      case RecoveryAction::kDegrade: bump(EscalationTier::kDegrade); break;
      case RecoveryAction::kCheckpointRestore:
        bump(EscalationTier::kCheckpoint);
        break;
      case RecoveryAction::kAbort: bump(EscalationTier::kExhausted); break;
      case RecoveryAction::kCheckpointSave:
      case RecoveryAction::kWatchdogRestart:
      case RecoveryAction::kWatchdogRefine:
      case RecoveryAction::kWatchdogRebound:
        break;  // bookkeeping, not escalation
    }
  }
  return tier;
}

}  // namespace dls
