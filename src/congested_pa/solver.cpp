#include "congested_pa/solver.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "graph/algorithms.hpp"
#include "obs/ledger_clock.hpp"
#include "obs/metrics.hpp"
#include "shortcuts/construction.hpp"
#include "util/thread_pool.hpp"

namespace dls {

namespace {

/// Per-part decomposition state shared by the up and down sweeps.
struct PartPlan {
  HeavyPathDecomposition hpd;
  /// value index: node -> position in the part's value vector.
  std::unordered_map<NodeId, std::size_t> value_index;
};

/// Rounds needed to deliver all head→attach (or attach→head) transfers of
/// one phase: each transfer uses the G-edge between head and attach; the
/// per-round per-edge-direction capacity of CONGEST makes the cost the max
/// number of transfers sharing a directed edge.
std::uint64_t transfer_rounds(const Graph& g,
                              const std::vector<std::pair<NodeId, NodeId>>&
                                  transfers) {
  if (transfers.empty()) return 0;
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> load;
  std::uint64_t worst = 0;
  for (const auto& [from, to] : transfers) {
    (void)g;
    worst = std::max(worst, ++load[{from, to}]);
  }
  return worst;
}

/// Core of solve_congested_pa, writing into a caller-owned outcome. The
/// split keeps the tracing scopes in the public wrapper strictly inside the
/// outcome's lifetime: span close reads the outcome ledger's cursors, which
/// must not race the return-value move.
void solve_congested_pa_into(const Graph& g, const PartCollection& pc,
                             const std::vector<std::vector<double>>& values,
                             const AggregationMonoid& monoid, Rng& rng,
                             const CongestedPaOptions& options,
                             CongestedPaOutcome& outcome) {
  outcome.results.assign(pc.num_parts(), monoid.identity);
  outcome.congestion = congestion(g, pc);
  if (pc.num_parts() == 0) return;
  Tracer* tracer = Tracer::ambient();

  if (options.model == PaModel::kNcc) {
    std::vector<NccPart> ncc_parts(pc.num_parts());
    for (std::size_t i = 0; i < pc.num_parts(); ++i) {
      DLS_REQUIRE(values[i].size() == pc.parts[i].size(), "values mismatch");
      ncc_parts[i].members = pc.parts[i];
      ncc_parts[i].values = values[i];
    }
    ScopedSpan span(tracer, "pa/ncc-aggregate", SpanKind::kPhase);
    const NccAggregationOutcome ncc =
        ncc_partwise_aggregate(g.num_nodes(), ncc_parts, monoid, rng);
    outcome.results = ncc.results;
    outcome.ledger.charge_global(ncc.rounds, "ncc-aggregate");
    outcome.total_rounds = outcome.ledger.total_global();
    outcome.phases = 1;
    span.counter("parts", pc.num_parts());
    return;
  }

  // CONGEST charges the distributed construction of each shortcut it builds:
  // BFS-tree assembly (≈ D + 1 rounds) plus one marking pass (≈ quality),
  // scaled by the Lemma 16 simulation factor for layered-graph shortcuts.
  const bool charge_construction = options.model == PaModel::kCongest;
  std::uint64_t diameter_estimate = 0;
  if (charge_construction) {
    Rng diam_rng = rng.fork();
    diameter_estimate = approx_diameter(g, diam_rng, 2);
  }
  const auto charge_build = [&](std::size_t quality, std::size_t layers,
                                const std::string& label) {
    if (!charge_construction) return;
    const std::uint64_t rounds =
        static_cast<std::uint64_t>(layers) *
        (diameter_estimate + 1 + static_cast<std::uint64_t>(quality));
    outcome.ledger.charge_local(rounds, label);
  };

  // Fast path 1 (ρ = 1): a plain partition needs no layering — Proposition 6
  // directly, exactly as the paper's framework does for standard PA.
  if (outcome.congestion == 1) {
    ScopedSpan span(tracer, "pa/1-congested", SpanKind::kPhase);
    const BestShortcut best = build_best_shortcut(g, pc, rng);
    charge_build(best.quality.quality(), 1, "construct-1-congested");
    const PartwiseAggregationOutcome pa =
        solve_partwise_aggregation(g, pc, values, monoid, best.shortcut, rng,
                                   options.policy, options.faults);
    outcome.results = pa.results;
    outcome.ledger.charge_local(pa.schedule.total_rounds, "pa-1-congested",
                                pa.schedule.congestion());
    outcome.total_rounds = outcome.ledger.total_local();
    outcome.phases = 1;
    outcome.max_layers = 1;
    span.counter("parts", pc.num_parts());
    return;
  }

  // Fast path 2: if every part already is a simple path, Lemma 18 applies
  // directly — one layered-graph solve, no heavy-path sweeps.
  {
    bool all_paths = true;
    for (const auto& part : pc.parts) {
      for (std::size_t j = 0; all_paths && j + 1 < part.size(); ++j) {
        bool adjacent = false;
        for (const Adjacency& a : g.neighbors(part[j])) {
          adjacent |= a.neighbor == part[j + 1];
        }
        all_paths &= adjacent;
      }
      if (!all_paths) break;
    }
    if (all_paths) {
      ScopedSpan span(tracer, "pa/path-restricted", SpanKind::kPhase);
      PathInstance inst;
      inst.paths = pc.parts;
      inst.values = values;
      const PathRestrictedOutcome phase =
          solve_path_restricted(g, inst, monoid, rng, options.policy,
                                options.palette_factor, options.faults);
      outcome.results = phase.results;
      outcome.max_layers = phase.layers;
      charge_build(phase.layered_shortcut_quality.quality(), phase.layers,
                   "construct-path-restricted");
      outcome.ledger.charge_local(phase.charged_rounds, "pa-path-restricted",
                                  phase.layered_congestion);
      outcome.total_rounds = outcome.ledger.total_local();
      outcome.phases = 1;
      span.counter("parts", pc.num_parts());
      span.counter("layers", phase.layers);
      return;
    }
  }

  // --- CONGEST via heavy paths + layered-graph path instances -------------
  // The per-part decompositions are pure functions of (g, part) — no Rng —
  // so they can fan out across the pool; each part writes only its own slot
  // and the depth fold below runs in index order either way.
  std::vector<PartPlan> plans(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    DLS_REQUIRE(values[i].size() == pc.parts[i].size(), "values mismatch");
  }
  parallel_for_each(options.pool, pc.num_parts(), [&](std::size_t i) {
    plans[i].hpd = heavy_path_decomposition(g, pc.parts[i]);
    for (std::size_t j = 0; j < pc.parts[i].size(); ++j) {
      plans[i].value_index.emplace(pc.parts[i][j], j);
    }
  });
  std::uint32_t max_depth = 0;
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    max_depth = std::max(max_depth, plans[i].hpd.max_depth);
  }

  // deposits[i][v]: value deposited at node v for part i by completed child
  // paths (the head→attach transfers between levels).
  std::vector<std::unordered_map<NodeId, double>> deposits(pc.num_parts());
  // path_aggregate[i][p]: aggregate of path p of part i after its phase.
  std::vector<std::vector<double>> path_aggregate(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    path_aggregate[i].assign(plans[i].hpd.paths.size(), monoid.identity);
  }

  // --- upward sweep: depth = max_depth .. 0 --------------------------------
  for (std::uint32_t d = max_depth + 1; d-- > 0;) {
    PathInstance inst;
    std::vector<std::pair<std::size_t, std::size_t>> owners;  // (part, path)
    for (std::size_t i = 0; i < pc.num_parts(); ++i) {
      const HeavyPathDecomposition& hpd = plans[i].hpd;
      for (std::size_t p = 0; p < hpd.paths.size(); ++p) {
        if (hpd.depth[p] != d) continue;
        std::vector<double> vals;
        vals.reserve(hpd.paths[p].size());
        for (NodeId v : hpd.paths[p]) {
          double value = values[i][plans[i].value_index.at(v)];
          const auto it = deposits[i].find(v);
          if (it != deposits[i].end()) value = monoid.op(value, it->second);
          vals.push_back(value);
        }
        inst.paths.push_back(hpd.paths[p]);
        inst.values.push_back(std::move(vals));
        owners.push_back({i, p});
      }
    }
    if (inst.paths.empty()) continue;
    ScopedSpan span(tracer, "pa/up-phase", SpanKind::kPhase);
    span.counter("depth", d);
    span.counter("paths", inst.paths.size());
    const PathRestrictedOutcome phase =
        solve_path_restricted(g, inst, monoid, rng, options.policy,
                              options.palette_factor, options.faults);
    outcome.max_layers = std::max(outcome.max_layers, phase.layers);
    charge_build(phase.layered_shortcut_quality.quality(), phase.layers,
                 "construct-up(d=" + std::to_string(d) + ")");
    outcome.ledger.charge_local(phase.charged_rounds,
                                "up-phase(d=" + std::to_string(d) + ")",
                                phase.layered_congestion);
    ++outcome.phases;
    // Record aggregates and perform head→attach transfers.
    std::vector<std::pair<NodeId, NodeId>> transfers;
    for (std::size_t q = 0; q < owners.size(); ++q) {
      const auto [i, p] = owners[q];
      path_aggregate[i][p] = phase.results[q];
      const NodeId attach = plans[i].hpd.attach[p];
      if (attach != kInvalidNode) {
        auto [it, inserted] = deposits[i].emplace(attach, phase.results[q]);
        if (!inserted) it->second = monoid.op(it->second, phase.results[q]);
        transfers.push_back({plans[i].hpd.paths[p].front(), attach});
      }
    }
    const std::uint64_t tr = transfer_rounds(g, transfers);
    if (tr > 0) {
      outcome.ledger.charge_local(tr, "deposit(d=" + std::to_string(d) + ")");
    }
  }

  // Root-path aggregate is the part total.
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    const HeavyPathDecomposition& hpd = plans[i].hpd;
    for (std::size_t p = 0; p < hpd.paths.size(); ++p) {
      if (hpd.depth[p] == 0) outcome.results[i] = path_aggregate[i][p];
    }
  }

  // --- downward sweep: broadcast the total to deeper levels ----------------
  // Depth-0 members already know the total from the up-phase broadcast.
  for (std::uint32_t d = 1; d <= max_depth; ++d) {
    PathInstance inst;
    std::vector<std::pair<NodeId, NodeId>> transfers;  // attach -> head
    for (std::size_t i = 0; i < pc.num_parts(); ++i) {
      const HeavyPathDecomposition& hpd = plans[i].hpd;
      for (std::size_t p = 0; p < hpd.paths.size(); ++p) {
        if (hpd.depth[p] != d) continue;
        // The head receives the total from its attach node (1 local transfer)
        // and the path-restricted PA broadcasts it along the path: head
        // carries the total, everyone else the identity, so the aggregate is
        // the total and the PA's broadcast phase delivers it to all members.
        std::vector<double> vals(hpd.paths[p].size(), monoid.identity);
        vals.front() = outcome.results[i];
        inst.paths.push_back(hpd.paths[p]);
        inst.values.push_back(std::move(vals));
        transfers.push_back({hpd.attach[p], hpd.paths[p].front()});
      }
    }
    if (inst.paths.empty()) continue;
    ScopedSpan span(tracer, "pa/down-phase", SpanKind::kPhase);
    span.counter("depth", d);
    span.counter("paths", inst.paths.size());
    const std::uint64_t tr = transfer_rounds(g, transfers);
    if (tr > 0) {
      outcome.ledger.charge_local(tr, "handoff(d=" + std::to_string(d) + ")");
    }
    const PathRestrictedOutcome phase =
        solve_path_restricted(g, inst, monoid, rng, options.policy,
                              options.palette_factor, options.faults);
    outcome.max_layers = std::max(outcome.max_layers, phase.layers);
    charge_build(phase.layered_shortcut_quality.quality(), phase.layers,
                 "construct-down(d=" + std::to_string(d) + ")");
    outcome.ledger.charge_local(phase.charged_rounds,
                                "down-phase(d=" + std::to_string(d) + ")",
                                phase.layered_congestion);
    ++outcome.phases;
  }

  outcome.total_rounds = outcome.ledger.total_local();
}

}  // namespace

CongestedPaOutcome solve_congested_pa(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, Rng& rng,
    const CongestedPaOptions& options) {
  DLS_REQUIRE(values.size() == pc.num_parts(), "values per part mismatch");
  DLS_REQUIRE(options.faults == nullptr || options.model != PaModel::kNcc,
              "fault injection targets the CONGEST message plane; the NCC "
              "clique model has no edge slots to fault");
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    DLS_REQUIRE(values[i].size() == pc.parts[i].size(), "values mismatch");
  }
  CongestedPaOutcome outcome;
  Tracer* tracer = Tracer::ambient();
  {
    // All spans opened during the solve read this outcome's ledger as their
    // clock; the scopes close before the function returns, so the cursors
    // are always read from a live ledger.
    ClockScope clock(tracer, ledger_clock(outcome.ledger));
    ScopedSpan span(tracer, "pa/congested-solve", SpanKind::kPaCall);
    span.counter("parts", pc.num_parts());
    solve_congested_pa_into(g, pc, values, monoid, rng, options, outcome);
    span.counter("rho", outcome.congestion);
    span.counter("phases", outcome.phases);
    span.counter("layers", outcome.max_layers);
  }
  return outcome;
}

CongestedPaOutcome solve_congested_pa_sequential_baseline(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, Rng& rng, SchedulingPolicy policy,
    ThreadPool* pool) {
  DLS_REQUIRE(values.size() == pc.num_parts(), "values per part mismatch");
  CongestedPaOutcome outcome;
  outcome.results.assign(pc.num_parts(), monoid.identity);
  outcome.congestion = congestion(g, pc);
  // Fork one stream per part up front (index order), so the randomness each
  // part consumes is fixed before any of them runs — the parallel execution
  // below cannot perturb a single simulated round.
  std::vector<Rng> part_rngs;
  part_rngs.reserve(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    part_rngs.push_back(rng.fork());
  }
  std::vector<PartwiseAggregationOutcome> part_outcomes(pc.num_parts());
  {
    // The per-part solves may run on pool workers in any interleaving;
    // suppress ambient tracing across the fan-out so the span stream cannot
    // depend on the thread count, and emit the per-part spans from the
    // deterministic index-order fold below instead.
    TraceScope suppress(nullptr);
    parallel_for_each(pool, pc.num_parts(), [&](std::size_t i) {
      PartCollection single;
      single.parts.push_back(pc.parts[i]);
      const BestShortcut best = build_best_shortcut(g, single, part_rngs[i]);
      part_outcomes[i] = solve_partwise_aggregation(
          g, single, {values[i]}, monoid, best.shortcut, part_rngs[i], policy);
    });
  }
  Tracer* tracer = Tracer::ambient();
  {
    ClockScope clock(tracer, ledger_clock(outcome.ledger));
    ScopedSpan span(tracer, "pa/baseline-solve", SpanKind::kPaCall);
    span.counter("parts", pc.num_parts());
    span.counter("rho", outcome.congestion);
    for (std::size_t i = 0; i < pc.num_parts(); ++i) {
      ScopedSpan part_span(tracer, "pa/baseline-part", SpanKind::kPhase);
      part_span.counter("part", i);
      const PartwiseAggregationOutcome& pa = part_outcomes[i];
      outcome.results[i] = pa.results[0];
      outcome.ledger.charge_local(pa.schedule.total_rounds,
                                  "part(" + std::to_string(i) + ")",
                                  pa.schedule.congestion());
      ++outcome.phases;
    }
    outcome.total_rounds = outcome.ledger.total_local();
  }
  return outcome;
}

}  // namespace dls
