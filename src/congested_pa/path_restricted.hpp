// Path-restricted congested part-wise aggregation (Lemma 18).
//
// Given simple paths with node congestion ρ, build the auxiliary multigraph
// M of all path-edge occurrences (Δ(M) ≤ 2ρ), properly colour it with
// C = O(ρ) colours (Lemma 17), and lift every path into the layered graph
// Ĝ_C: the occurrence of edge (u,v) coloured c becomes the layer-c copy of
// that edge, and consecutive occurrences at a node are joined by the node's
// intra-clique edges. Because at most one occurrence of each colour touches
// a node, the lifted parts are node-disjoint — a 1-congested instance —
// which we solve with shortcuts on Ĝ_C and charge back to G at the Lemma 16
// simulation overhead of C local rounds per layered round.
#pragma once

#include <memory>

#include "congested_pa/edge_coloring.hpp"
#include "congested_pa/layered_graph.hpp"
#include "shortcuts/partwise_aggregation.hpp"

namespace dls {

struct PathInstance {
  std::vector<std::vector<NodeId>> paths;   // simple paths in the host graph
  std::vector<std::vector<double>> values;  // aligned with paths
};

/// Validates simple-path structure and consecutive adjacency; returns the
/// node congestion ρ of the instance.
std::size_t validate_path_instance(const Graph& g, const PathInstance& inst);

/// The lifted 1-congested instance on the layered graph — exposed so tests
/// can check Lemma 18's invariants (disjointness, connectivity) directly.
struct LiftedInstance {
  std::unique_ptr<LayeredGraph> layered;
  PartCollection parts;                     // node-disjoint in layered graph
  std::vector<std::vector<double>> values;  // aligned
  EdgeColoring coloring;
  /// Paths of length 0 (single nodes) need no communication and are solved
  /// locally; their indices are listed here and excluded from `parts`.
  std::vector<std::size_t> local_only;
  /// lifted_of[i] = index into parts for path i, or -1 if local-only.
  std::vector<std::size_t> lifted_of;
};

LiftedInstance build_lifted_instance(const Graph& g, const PathInstance& inst,
                                     Rng& rng, double palette_factor = 2.0);

struct PathRestrictedOutcome {
  std::vector<double> results;  // per path
  std::size_t congestion = 0;   // ρ of the input instance
  std::size_t layers = 0;       // C — colours used
  std::uint64_t coloring_rounds = 0;
  std::uint64_t layered_pa_rounds = 0;  // measured rounds on Ĝ_C
  std::uint64_t charged_rounds = 0;     // coloring + C · layered (Lemma 16)
  ShortcutQuality layered_shortcut_quality;
  /// Observed congestion of the layered PA schedule (zero if no messages).
  PhaseCongestion layered_congestion;
};

/// An optional FaultPlan applies to the layered-graph PA schedule (the only
/// message-level simulation in this reduction; the colouring itself is
/// charged analytically). Slots and node ids in its events are layered-graph
/// coordinates.
PathRestrictedOutcome solve_path_restricted(
    const Graph& g, const PathInstance& inst, const AggregationMonoid& monoid,
    Rng& rng, SchedulingPolicy policy = SchedulingPolicy::kRandomPriority,
    double palette_factor = 2.0, FaultPlan* faults = nullptr);

}  // namespace dls
