#include "congested_pa/layered_graph.hpp"

namespace dls {

LayeredGraph::LayeredGraph(const Graph& base, std::size_t layers)
    : layers_(layers),
      base_nodes_(base.num_nodes()),
      base_edges_(base.num_edges()) {
  DLS_REQUIRE(layers >= 1, "layered graph needs at least one layer");
  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t v = 0; v < base_nodes_; ++v) graph_.add_node();
  }
  // Intra-layer copies of every base edge, layer-major: id = l*m + e.
  for (std::size_t l = 0; l < layers; ++l) {
    for (EdgeId e = 0; e < base_edges_; ++e) {
      const Edge& edge = base.edge(e);
      graph_.add_edge(lift(edge.u, l), lift(edge.v, l), edge.weight);
    }
  }
  // Intra-node cliques over the copies of each node, in (v, a<b) order.
  for (NodeId v = 0; v < base_nodes_; ++v) {
    for (std::size_t a = 0; a < layers; ++a) {
      for (std::size_t b = a + 1; b < layers; ++b) {
        graph_.add_edge(lift(v, a), lift(v, b));
      }
    }
  }
}

EdgeId LayeredGraph::clique_edge(NodeId base_node, std::size_t layer_a,
                                 std::size_t layer_b) const {
  DLS_REQUIRE(base_node < base_nodes_, "node out of range");
  DLS_REQUIRE(layer_a != layer_b && layer_a < layers_ && layer_b < layers_,
              "clique_edge layers invalid");
  const std::size_t a = std::min(layer_a, layer_b);
  const std::size_t b = std::max(layer_a, layer_b);
  // Clique edges start after all lifted edges; per node there are
  // layers*(layers-1)/2 of them in (a, b) lexicographic order.
  const std::size_t per_node = layers_ * (layers_ - 1) / 2;
  // Index of pair (a, b) within one node's clique block.
  const std::size_t pair_index = a * layers_ - a * (a + 1) / 2 + (b - a - 1);
  return static_cast<EdgeId>(layers_ * base_edges_ +
                             static_cast<std::size_t>(base_node) * per_node +
                             pair_index);
}

}  // namespace dls
