// Distributed multigraph edge colouring (Lemma 17, folklore / [30]): colour
// the edges of a multigraph of maximum degree Δ with O(Δ) colours in
// O(log n) rounds, with high probability. Parallel edges are first-class:
// each occurrence is an edge and incident occurrences must differ in colour.
//
// The simulated distributed process: every round, each uncoloured edge draws
// a uniform colour from its current palette (the full palette minus colours
// already fixed on incident edges); it keeps the draw iff no incident
// uncoloured edge drew the same colour this round. We report the number of
// rounds the process took — this is the quantity Lemma 15 charges.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace dls {

/// An edge occurrence of the auxiliary multigraph M built from path
/// instances (not necessarily an edge of any Graph object).
struct MultiEdge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
};

struct EdgeColoring {
  std::vector<std::uint32_t> colors;  // per input edge
  std::size_t num_colors = 0;         // palette size actually offered
  std::size_t max_color_used = 0;     // max assigned colour + 1
  std::uint64_t rounds = 0;           // simulated distributed rounds
};

/// Properly colours `edges` with a palette of ceil(palette_factor · Δ)
/// colours (at least Δ + 1). Throws after an implausible number of rounds
/// (palette too tight) rather than looping forever.
EdgeColoring color_multigraph(std::size_t num_nodes,
                              const std::vector<MultiEdge>& edges, Rng& rng,
                              double palette_factor = 2.0);

/// Deterministic greedy colouring: first free colour per edge in input
/// order, using at most 2Δ − 1 colours. Centralized (rounds reported as 0 —
/// callers charging CONGEST costs should prefer color_multigraph); used for
/// deterministic pipelines and as a tight-palette reference in ablations.
EdgeColoring color_multigraph_greedy(std::size_t num_nodes,
                                     const std::vector<MultiEdge>& edges);

/// True iff no two edges sharing an endpoint have the same colour.
bool is_proper_edge_coloring(std::size_t num_nodes,
                             const std::vector<MultiEdge>& edges,
                             const std::vector<std::uint32_t>& colors);

/// Max degree of the multigraph (counting multiplicity).
std::size_t multigraph_max_degree(std::size_t num_nodes,
                                  const std::vector<MultiEdge>& edges);

}  // namespace dls
