#include "congested_pa/euler_paths.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "graph/algorithms.hpp"

namespace dls {

EulerPathDecomposition euler_path_decomposition(const Graph& g,
                                                const std::vector<NodeId>& part) {
  DLS_REQUIRE(!part.empty(), "empty part");
  const InducedSubgraph sub = induced_subgraph(g, part);
  DLS_REQUIRE(is_connected(sub.graph), "part does not induce a connected subgraph");

  EulerPathDecomposition epd;
  epd.part_nodes = part;
  if (part.size() == 1) {
    epd.segments.push_back({part[0]});
    epd.first_occurrence.assign(1, {0, 0});
    return epd;
  }
  const std::vector<EdgeId> tree = bfs_tree_edges(sub.graph, 0);
  const std::vector<NodeId> tour_local = euler_tour(sub.graph, tree, 0);

  // Greedy split into maximal simple segments; each new segment starts at
  // the previous segment's last node (the shared chain node).
  std::vector<NodeId> tour;
  tour.reserve(tour_local.size());
  for (NodeId v : tour_local) tour.push_back(sub.to_original[v]);

  std::unordered_map<NodeId, std::uint32_t> first_seg, first_off;
  std::vector<NodeId> current{tour[0]};
  std::unordered_set<NodeId> on_current{tour[0]};
  auto note_first = [&](NodeId v, std::uint32_t seg, std::uint32_t off) {
    if (first_seg.find(v) == first_seg.end()) {
      first_seg[v] = seg;
      first_off[v] = off;
    }
  };
  note_first(tour[0], 0, 0);
  for (std::size_t i = 1; i < tour.size(); ++i) {
    const NodeId v = tour[i];
    if (on_current.count(v) > 0) {
      // Close the segment; the next one starts at the current tail.
      const NodeId tail = current.back();
      epd.segments.push_back(std::move(current));
      current = {tail};
      on_current.clear();
      on_current.insert(tail);
      if (v == tail) continue;  // tour revisits the tail itself
    }
    note_first(v, static_cast<std::uint32_t>(epd.segments.size()),
               static_cast<std::uint32_t>(current.size()));
    current.push_back(v);
    on_current.insert(v);
  }
  if (current.size() > 1 || epd.segments.empty()) {
    epd.segments.push_back(std::move(current));
  }
  epd.first_occurrence.reserve(part.size());
  for (NodeId v : part) {
    const auto it = first_seg.find(v);
    DLS_ASSERT(it != first_seg.end(), "tour missed a part node");
    epd.first_occurrence.push_back({it->second, first_off[v]});
  }
  return epd;
}

bool is_valid_euler_decomposition(const Graph& g,
                                  const std::vector<NodeId>& part,
                                  const EulerPathDecomposition& epd) {
  if (epd.part_nodes != part) return false;
  if (epd.first_occurrence.size() != part.size()) return false;
  auto adjacent = [&](NodeId a, NodeId b) {
    for (const Adjacency& adj : g.neighbors(a)) {
      if (adj.neighbor == b) return true;
    }
    return false;
  };
  for (std::size_t s = 0; s < epd.segments.size(); ++s) {
    const auto& seg = epd.segments[s];
    if (seg.empty()) return false;
    std::unordered_set<NodeId> seen;
    for (NodeId v : seg) {
      if (!seen.insert(v).second) return false;  // not simple
    }
    for (std::size_t i = 0; i + 1 < seg.size(); ++i) {
      if (!adjacent(seg[i], seg[i + 1])) return false;
    }
    // Chaining: each segment starts at the previous segment's tail.
    if (s > 0 && seg.front() != epd.segments[s - 1].back()) return false;
  }
  // Coverage + first-occurrence consistency.
  std::unordered_set<NodeId> part_set(part.begin(), part.end());
  std::unordered_set<NodeId> covered;
  for (const auto& seg : epd.segments) {
    for (NodeId v : seg) {
      if (part_set.count(v) == 0) return false;
      covered.insert(v);
    }
  }
  if (covered.size() != part_set.size()) return false;
  for (std::size_t i = 0; i < part.size(); ++i) {
    const auto [s, o] = epd.first_occurrence[i];
    if (s >= epd.segments.size()) return false;
    if (o >= epd.segments[s].size()) return false;
    if (epd.segments[s][o] != part[i]) return false;
  }
  return true;
}

std::size_t euler_segment_congestion(
    const Graph& g, const std::vector<std::vector<NodeId>>& parts) {
  std::vector<std::size_t> load(g.num_nodes(), 0);
  std::size_t worst = 0;
  for (const auto& part : parts) {
    const EulerPathDecomposition epd = euler_path_decomposition(g, part);
    for (const auto& seg : epd.segments) {
      for (NodeId v : seg) {
        worst = std::max(worst, ++load[v]);
      }
    }
  }
  return worst;
}

}  // namespace dls
