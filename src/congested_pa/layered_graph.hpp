// The layered graph Ĝ_ρ (Section 3.1.1, Figure 2): ρ disjoint copies
// ("layers") of G, every base edge replaced by a matching across the layers
// (one copy per layer), and every node's ρ copies joined into a clique.
//
// Node numbering is layer-major: copy l of base node v has id l·n + v, so
// projection (π of the paper) is id mod n. Edge numbering puts the layer-l
// copy of base edge e at id l·m + e, followed by all intra-node clique
// edges; this makes lifting a base edge into a chosen layer O(1), which the
// Lemma 18 reduction uses.
#pragma once

#include "graph/graph.hpp"

namespace dls {

class LayeredGraph {
 public:
  LayeredGraph(const Graph& base, std::size_t layers);

  const Graph& graph() const { return graph_; }
  std::size_t layers() const { return layers_; }
  std::size_t base_nodes() const { return base_nodes_; }
  std::size_t base_edges() const { return base_edges_; }

  NodeId lift(NodeId base_node, std::size_t layer) const {
    DLS_REQUIRE(base_node < base_nodes_ && layer < layers_, "lift out of range");
    return static_cast<NodeId>(layer * base_nodes_ + base_node);
  }

  /// π: layered node -> base node.
  NodeId project(NodeId layered_node) const {
    DLS_REQUIRE(layered_node < graph_.num_nodes(), "project out of range");
    return static_cast<NodeId>(layered_node % base_nodes_);
  }

  std::size_t layer_of(NodeId layered_node) const {
    DLS_REQUIRE(layered_node < graph_.num_nodes(), "layer_of out of range");
    return layered_node / base_nodes_;
  }

  /// The layer-`layer` copy of base edge `base_edge`.
  EdgeId lift_edge(EdgeId base_edge, std::size_t layer) const {
    DLS_REQUIRE(base_edge < base_edges_ && layer < layers_,
                "lift_edge out of range");
    return static_cast<EdgeId>(layer * base_edges_ + base_edge);
  }

  /// The clique edge joining copies (v, a) and (v, b), a != b.
  EdgeId clique_edge(NodeId base_node, std::size_t layer_a,
                     std::size_t layer_b) const;

 private:
  Graph graph_;
  std::size_t layers_;
  std::size_t base_nodes_;
  std::size_t base_edges_;
};

}  // namespace dls
