#include "congested_pa/edge_coloring.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/assert.hpp"

namespace dls {

std::size_t multigraph_max_degree(std::size_t num_nodes,
                                  const std::vector<MultiEdge>& edges) {
  std::vector<std::size_t> degree(num_nodes, 0);
  std::size_t best = 0;
  for (const MultiEdge& e : edges) {
    DLS_REQUIRE(e.u < num_nodes && e.v < num_nodes, "edge endpoint out of range");
    DLS_REQUIRE(e.u != e.v, "self-loops not supported");
    best = std::max({best, ++degree[e.u], ++degree[e.v]});
  }
  return best;
}

bool is_proper_edge_coloring(std::size_t num_nodes,
                             const std::vector<MultiEdge>& edges,
                             const std::vector<std::uint32_t>& colors) {
  if (colors.size() != edges.size()) return false;
  std::vector<std::unordered_set<std::uint32_t>> used(num_nodes);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (!used[edges[i].u].insert(colors[i]).second) return false;
    if (!used[edges[i].v].insert(colors[i]).second) return false;
  }
  return true;
}

EdgeColoring color_multigraph_greedy(std::size_t num_nodes,
                                     const std::vector<MultiEdge>& edges) {
  EdgeColoring result;
  result.colors.assign(edges.size(), static_cast<std::uint32_t>(-1));
  if (edges.empty()) return result;
  const std::size_t delta = multigraph_max_degree(num_nodes, edges);
  result.num_colors = 2 * delta - 1;  // greedy never needs more
  std::vector<std::unordered_set<std::uint32_t>> used(num_nodes);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    std::uint32_t color = 0;
    while (used[edges[i].u].count(color) > 0 || used[edges[i].v].count(color) > 0) {
      ++color;
    }
    DLS_ASSERT(color < result.num_colors, "greedy exceeded 2*delta - 1 colours");
    result.colors[i] = color;
    used[edges[i].u].insert(color);
    used[edges[i].v].insert(color);
    result.max_color_used =
        std::max<std::size_t>(result.max_color_used, color + 1);
  }
  DLS_ASSERT(is_proper_edge_coloring(num_nodes, edges, result.colors),
             "greedy colouring postcondition failed");
  return result;
}

EdgeColoring color_multigraph(std::size_t num_nodes,
                              const std::vector<MultiEdge>& edges, Rng& rng,
                              double palette_factor) {
  EdgeColoring result;
  result.colors.assign(edges.size(), static_cast<std::uint32_t>(-1));
  if (edges.empty()) {
    result.num_colors = 0;
    return result;
  }
  const std::size_t delta = multigraph_max_degree(num_nodes, edges);
  result.num_colors = std::max<std::size_t>(
      delta + 1,
      static_cast<std::size_t>(std::ceil(palette_factor * static_cast<double>(delta))));

  // Incidence lists: edges per node.
  std::vector<std::vector<std::uint32_t>> incident(num_nodes);
  for (std::uint32_t i = 0; i < edges.size(); ++i) {
    incident[edges[i].u].push_back(i);
    incident[edges[i].v].push_back(i);
  }
  std::vector<std::unordered_set<std::uint32_t>> fixed(num_nodes);

  std::vector<std::uint32_t> active(edges.size());
  for (std::uint32_t i = 0; i < edges.size(); ++i) active[i] = i;

  std::vector<std::uint32_t> proposal(edges.size(), static_cast<std::uint32_t>(-1));
  const std::uint64_t round_limit =
      64 * (64 + static_cast<std::uint64_t>(
                     std::log2(static_cast<double>(edges.size() + num_nodes + 2))));
  while (!active.empty()) {
    ++result.rounds;
    DLS_ASSERT(result.rounds <= round_limit,
               "edge colouring failed to converge — palette too tight?");
    // Proposal step: uniform colour from the available palette.
    for (std::uint32_t i : active) {
      std::uint32_t color;
      int tries = 0;
      do {
        color = static_cast<std::uint32_t>(rng.next_below(result.num_colors));
        DLS_ASSERT(++tries < 4096, "no available colour — degree bound broken");
      } while (fixed[edges[i].u].count(color) > 0 ||
               fixed[edges[i].v].count(color) > 0);
      proposal[i] = color;
    }
    // Conflict detection: an edge keeps its colour iff no incident active
    // edge proposed the same colour.
    std::vector<std::uint32_t> next_active;
    for (std::uint32_t i : active) {
      bool conflict = false;
      for (NodeId endpoint : {edges[i].u, edges[i].v}) {
        for (std::uint32_t j : incident[endpoint]) {
          if (j != i && proposal[j] == proposal[i] &&
              result.colors[j] == static_cast<std::uint32_t>(-1)) {
            conflict = true;
            break;
          }
        }
        if (conflict) break;
      }
      if (!conflict) {
        result.colors[i] = proposal[i];
      } else {
        next_active.push_back(i);
      }
    }
    // Commit fixed colours (after the simultaneous round).
    for (std::uint32_t i : active) {
      if (result.colors[i] != static_cast<std::uint32_t>(-1)) {
        fixed[edges[i].u].insert(result.colors[i]);
        fixed[edges[i].v].insert(result.colors[i]);
        result.max_color_used =
            std::max<std::size_t>(result.max_color_used, result.colors[i] + 1);
      }
    }
    active = std::move(next_active);
    for (std::uint32_t i : active) proposal[i] = static_cast<std::uint32_t>(-1);
  }
  DLS_ASSERT(is_proper_edge_coloring(num_nodes, edges, result.colors),
             "colouring postcondition failed");
  return result;
}

}  // namespace dls
