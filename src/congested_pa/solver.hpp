// The congested part-wise aggregation solver (Definition 13 → Lemma 15,
// Corollaries 20/23, Lemma 26).
//
// General parts are reduced to path-restricted instances via heavy-path
// decomposition of each part's spanning tree: all heavy paths of one depth
// level form a path-restricted instance with the same congestion ρ, depth
// levels number O(log n), and between levels a single local round moves each
// completed path's aggregate from its head to the attach node one level up.
// Each path-restricted instance runs through the Lemma 18 layered-graph
// reduction (path_restricted.hpp). After the root level aggregates, the
// total is broadcast back down symmetrically. This realizes Lemma 15's
// Õ(ρ·T) bound with the logarithmic overhead explicit in the ledger.
//
// Model notes: Supported-CONGEST and CONGEST run the identical measured
// aggregation pipeline; they differ in shortcut *construction* (Theorem 8).
// In Supported-CONGEST the topology is known upfront, so construction is
// free. In CONGEST we charge the distributed cost of the tree-restricted
// construction we actually use: a BFS-tree build (D + 1 rounds) plus one
// marking pass over the constructed shortcut (≈ its quality Q), per
// constructed shortcut, multiplied by the Lemma 16 simulation factor when
// built on a layered graph. The state-of-the-art general construction [27]
// is substituted per DESIGN.md §2. NCC instead uses the [2]-style
// capacitated-clique aggregation (Lemma 26) and charges global rounds.
#pragma once

#include "congested_pa/heavy_paths.hpp"
#include "congested_pa/path_restricted.hpp"
#include "shortcuts/partition.hpp"
#include "sim/ncc.hpp"
#include "sim/round_ledger.hpp"

namespace dls {

class ThreadPool;

enum class PaModel {
  kSupportedCongest,  // shortcut construction free (topology known upfront)
  kCongest,           // construction charged (see header comment)
  kNcc,               // capacitated clique (Lemma 26); global rounds
};

struct CongestedPaOptions {
  PaModel model = PaModel::kSupportedCongest;
  SchedulingPolicy policy = SchedulingPolicy::kRandomPriority;
  double palette_factor = 2.0;
  /// Optional worker pool for the embarrassingly parallel pieces (per-part
  /// heavy-path decompositions). Results are bit-identical with and without
  /// a pool: parallel work never touches the shared Rng stream, so the
  /// simulated round accounting does not depend on the thread count.
  ThreadPool* pool = nullptr;
  /// Opt-in fault injection (sim/fault_injection.hpp). Every message-level
  /// phase of the pipeline — the ρ=1 fast path, the all-paths fast path, and
  /// both heavy-path sweeps — consults the plan; under eventual delivery the
  /// results stay bit-identical to the fault-free run, otherwise the solve
  /// throws ChaosAbortError with the partial ledger. Must be null for kNcc
  /// (the clique model has no edge slots to fault). A null plan changes
  /// nothing: the fault-free path is bit-identical to the pinned golden
  /// traces. Not thread-safe — one plan per concurrently simulated scenario.
  FaultPlan* faults = nullptr;
};

struct CongestedPaOutcome {
  std::vector<double> results;   // aggregate per part (known to every member)
  std::size_t congestion = 0;    // ρ of the instance
  std::uint32_t phases = 0;      // heavy-path depth levels (up + down)
  std::size_t max_layers = 0;    // largest layered graph used
  std::uint64_t total_rounds = 0;  // charged rounds in the selected model
  RoundLedger ledger;            // per-phase breakdown
};

/// Solves a ρ-congested part-wise aggregation instance. values[i][j] is the
/// input of pc.parts[i][j]; on return results[i] is ⊕ over part i.
CongestedPaOutcome solve_congested_pa(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, Rng& rng,
    const CongestedPaOptions& options = {});

/// Naive baseline for Observation 14 benchmarks: solve the parts one at a
/// time as 1-congested instances (k sequential phases). The rounds blow up
/// linearly in the number of overlapping parts, which is exactly the failure
/// mode Observation 14 formalizes.
/// The k per-part solves are independent: each draws from an Rng forked off
/// the caller's stream in part order, so running them on `pool` (when given)
/// changes wall-clock time but not one reported round. The ledger lists the
/// parts in index order regardless of completion order.
CongestedPaOutcome solve_congested_pa_sequential_baseline(
    const Graph& g, const PartCollection& pc,
    const std::vector<std::vector<double>>& values,
    const AggregationMonoid& monoid, Rng& rng,
    SchedulingPolicy policy = SchedulingPolicy::kRandomPriority,
    ThreadPool* pool = nullptr);

}  // namespace dls
