#include "congested_pa/path_restricted.hpp"

#include <algorithm>
#include <unordered_set>

#include "graph/algorithms.hpp"

namespace dls {

std::size_t validate_path_instance(const Graph& g, const PathInstance& inst) {
  DLS_REQUIRE(inst.paths.size() == inst.values.size(),
              "paths/values count mismatch");
  std::vector<std::size_t> load(g.num_nodes(), 0);
  std::size_t rho = 0;
  for (std::size_t i = 0; i < inst.paths.size(); ++i) {
    const auto& path = inst.paths[i];
    DLS_REQUIRE(!path.empty(), "empty path");
    DLS_REQUIRE(path.size() == inst.values[i].size(), "values size mismatch");
    std::unordered_set<NodeId> seen;
    for (NodeId v : path) {
      DLS_REQUIRE(v < g.num_nodes(), "path node out of range");
      DLS_REQUIRE(seen.insert(v).second, "path is not simple");
      rho = std::max(rho, ++load[v]);
    }
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      bool adjacent = false;
      for (const Adjacency& a : g.neighbors(path[j])) {
        if (a.neighbor == path[j + 1]) {
          adjacent = true;
          break;
        }
      }
      DLS_REQUIRE(adjacent, "consecutive path nodes are not adjacent");
    }
  }
  return rho;
}

namespace {

/// Any edge id connecting u and v in g (paths only need one witness edge).
EdgeId find_edge(const Graph& g, NodeId u, NodeId v) {
  for (const Adjacency& a : g.neighbors(u)) {
    if (a.neighbor == v) return a.edge;
  }
  DLS_ASSERT(false, "find_edge: nodes not adjacent");
  return kInvalidEdge;
}

}  // namespace

LiftedInstance build_lifted_instance(const Graph& g, const PathInstance& inst,
                                     Rng& rng, double palette_factor) {
  validate_path_instance(g, inst);
  LiftedInstance lifted;

  // The auxiliary multigraph M: one occurrence per path edge.
  std::vector<MultiEdge> occurrences;
  std::vector<EdgeId> occurrence_base_edge;
  std::vector<std::pair<std::size_t, std::size_t>> occurrence_owner;  // (path, pos)
  for (std::size_t i = 0; i < inst.paths.size(); ++i) {
    const auto& path = inst.paths[i];
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      occurrences.push_back({path[j], path[j + 1]});
      occurrence_base_edge.push_back(find_edge(g, path[j], path[j + 1]));
      occurrence_owner.push_back({i, j});
    }
  }
  lifted.coloring =
      color_multigraph(g.num_nodes(), occurrences, rng, palette_factor);
  const std::size_t layers = std::max<std::size_t>(lifted.coloring.max_color_used, 1);
  lifted.layered = std::make_unique<LayeredGraph>(g, layers);

  // colour_of[path][j] = colour of the j-th edge occurrence of the path.
  std::vector<std::vector<std::uint32_t>> colour_of(inst.paths.size());
  for (std::size_t i = 0; i < inst.paths.size(); ++i) {
    colour_of[i].assign(
        inst.paths[i].size() > 0 ? inst.paths[i].size() - 1 : 0, 0);
  }
  for (std::size_t o = 0; o < occurrences.size(); ++o) {
    const auto [i, j] = occurrence_owner[o];
    colour_of[i][j] = lifted.coloring.colors[o];
  }

  lifted.lifted_of.assign(inst.paths.size(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < inst.paths.size(); ++i) {
    const auto& path = inst.paths[i];
    if (path.size() == 1) {
      lifted.local_only.push_back(i);
      continue;
    }
    std::vector<NodeId> part;
    std::vector<double> vals;
    // Node j's copies: (v_j, c_j) where c_j is the colour of its preceding
    // occurrence (for j ≥ 1) and (v_j, c_{j+1}) for the following one
    // (for j ≤ k−1). The input value rides on the first listed copy.
    for (std::size_t j = 0; j < path.size(); ++j) {
      const NodeId v = path[j];
      if (j > 0) {
        part.push_back(lifted.layered->lift(v, colour_of[i][j - 1]));
        vals.push_back(inst.values[i][j]);
      }
      if (j + 1 < path.size()) {
        const bool first_copy = (j == 0);
        // Skip the duplicate when both occurrences share a colour — they
        // cannot (proper colouring at v), but guard the single-copy case
        // where j==0 contributes the node's only copy.
        part.push_back(lifted.layered->lift(v, colour_of[i][j]));
        vals.push_back(first_copy ? inst.values[i][j] : 0.0);
      }
    }
    // Interior nodes appear twice (two distinct colours); their value was
    // attached to the first copy and the second got a literal 0.0 — replace
    // with the monoid identity at solve time. We record positions of the
    // placeholder copies via NaN-free convention: store values now and fix
    // in solve (identity is monoid-specific).
    lifted.lifted_of[i] = lifted.parts.parts.size();
    lifted.parts.parts.push_back(std::move(part));
    lifted.values.push_back(std::move(vals));
  }
  return lifted;
}

PathRestrictedOutcome solve_path_restricted(const Graph& g,
                                            const PathInstance& inst,
                                            const AggregationMonoid& monoid,
                                            Rng& rng, SchedulingPolicy policy,
                                            double palette_factor,
                                            FaultPlan* faults) {
  PathRestrictedOutcome outcome;
  outcome.congestion = validate_path_instance(g, inst);
  LiftedInstance lifted = build_lifted_instance(g, inst, rng, palette_factor);
  outcome.layers = lifted.layered->layers();
  outcome.coloring_rounds = lifted.coloring.rounds;

  // build_lifted_instance attaches the real input to the first copy of each
  // node and a 0.0 placeholder to the second; rewrite the placeholders with
  // the monoid's identity by mirroring the lift order.
  {
    std::size_t part_idx = 0;
    for (std::size_t i = 0; i < inst.paths.size(); ++i) {
      if (lifted.lifted_of[i] == static_cast<std::size_t>(-1)) continue;
      auto& vals = lifted.values[part_idx];
      const auto& path = inst.paths[i];
      std::size_t cursor = 0;
      for (std::size_t j = 0; j < path.size(); ++j) {
        if (j > 0) {
          vals[cursor++] = inst.values[i][j];
        }
        if (j + 1 < path.size()) {
          vals[cursor++] = (j == 0) ? inst.values[i][j] : monoid.identity;
        }
      }
      DLS_ASSERT(cursor == vals.size(), "value rebuild misaligned");
      ++part_idx;
    }
  }

  outcome.results.assign(inst.paths.size(), monoid.identity);
  if (!lifted.parts.parts.empty()) {
    const BestShortcut best =
        build_best_shortcut(lifted.layered->graph(), lifted.parts, rng);
    outcome.layered_shortcut_quality = best.quality;
    const PartwiseAggregationOutcome pa = solve_partwise_aggregation(
        lifted.layered->graph(), lifted.parts, lifted.values, monoid,
        best.shortcut, rng, policy, faults);
    outcome.layered_pa_rounds = pa.schedule.total_rounds;
    outcome.layered_congestion = pa.schedule.congestion();
    for (std::size_t i = 0; i < inst.paths.size(); ++i) {
      if (lifted.lifted_of[i] != static_cast<std::size_t>(-1)) {
        outcome.results[i] = pa.results[lifted.lifted_of[i]];
      }
    }
  }
  for (std::size_t i : lifted.local_only) {
    outcome.results[i] = monoid.op(monoid.identity, inst.values[i][0]);
  }
  outcome.charged_rounds =
      outcome.coloring_rounds + outcome.layers * outcome.layered_pa_rounds;
  return outcome;
}

}  // namespace dls
