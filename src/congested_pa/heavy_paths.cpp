#include "congested_pa/heavy_paths.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>

#include "graph/algorithms.hpp"

namespace dls {

HeavyPathDecomposition heavy_path_decomposition(const Graph& g,
                                                const std::vector<NodeId>& part) {
  DLS_REQUIRE(!part.empty(), "empty part");
  const InducedSubgraph sub = induced_subgraph(g, part);
  DLS_REQUIRE(is_connected(sub.graph), "part does not induce a connected subgraph");
  const std::size_t k = sub.graph.num_nodes();

  // BFS spanning tree of the induced subgraph, rooted at local node 0.
  const BfsResult tree = bfs(sub.graph, 0);
  std::vector<std::vector<NodeId>> children(k);
  for (NodeId v = 0; v < k; ++v) {
    if (tree.parent[v] != kInvalidNode) children[tree.parent[v]].push_back(v);
  }
  // Subtree sizes bottom-up (process in decreasing BFS distance).
  std::vector<NodeId> order(k);
  for (NodeId v = 0; v < k; ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&](NodeId a, NodeId b) { return tree.dist[a] > tree.dist[b]; });
  std::vector<std::uint32_t> size(k, 1);
  for (NodeId v : order) {
    if (tree.parent[v] != kInvalidNode) size[tree.parent[v]] += size[v];
  }
  // Heavy child per node.
  std::vector<NodeId> heavy(k, kInvalidNode);
  for (NodeId v = 0; v < k; ++v) {
    std::uint32_t best = 0;
    for (NodeId c : children[v]) {
      if (size[c] > best) {
        best = size[c];
        heavy[v] = c;
      }
    }
  }

  HeavyPathDecomposition hpd;
  // Walk heavy chains from each chain head. A node is a head iff it is the
  // root or not its parent's heavy child.
  std::vector<std::uint32_t> path_of(k, static_cast<std::uint32_t>(-1));
  std::deque<std::pair<NodeId, std::uint32_t>> heads;  // (local head, depth)
  heads.push_back({0, 0});
  while (!heads.empty()) {
    const auto [head, d] = heads.front();
    heads.pop_front();
    const std::uint32_t path_index = static_cast<std::uint32_t>(hpd.paths.size());
    std::vector<NodeId> path_nodes;
    NodeId cur = head;
    while (cur != kInvalidNode) {
      path_of[cur] = path_index;
      path_nodes.push_back(sub.to_original[cur]);
      for (NodeId c : children[cur]) {
        if (c != heavy[cur]) heads.push_back({c, d + 1});
      }
      cur = heavy[cur];
    }
    hpd.paths.push_back(std::move(path_nodes));
    hpd.attach.push_back(head == 0 ? kInvalidNode
                                   : sub.to_original[tree.parent[head]]);
    hpd.depth.push_back(d);
    hpd.max_depth = std::max(hpd.max_depth, d);
  }
  return hpd;
}

bool is_valid_heavy_path_decomposition(const Graph& g,
                                       const std::vector<NodeId>& part,
                                       const HeavyPathDecomposition& hpd) {
  // Exact cover.
  std::set<NodeId> part_set(part.begin(), part.end());
  std::set<NodeId> covered;
  for (const auto& path : hpd.paths) {
    for (NodeId v : path) {
      if (part_set.count(v) == 0) return false;
      if (!covered.insert(v).second) return false;
    }
  }
  if (covered.size() != part_set.size()) return false;
  // Consecutive adjacency within each path, and attach adjacency.
  auto adjacent = [&](NodeId a, NodeId b) {
    for (const Adjacency& adj : g.neighbors(a)) {
      if (adj.neighbor == b) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < hpd.paths.size(); ++i) {
    const auto& path = hpd.paths[i];
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      if (!adjacent(path[j], path[j + 1])) return false;
    }
    if (hpd.attach[i] != kInvalidNode && !adjacent(hpd.attach[i], path.front())) {
      return false;
    }
    if ((hpd.attach[i] == kInvalidNode) != (hpd.depth[i] == 0)) return false;
  }
  // Depth bound: heavy-path depth ≤ ⌈log₂(|part|+1)⌉.
  const std::uint32_t bound = static_cast<std::uint32_t>(
      std::ceil(std::log2(static_cast<double>(part.size()) + 1.0)));
  for (std::uint32_t d : hpd.depth) {
    if (d > bound) return false;
  }
  return true;
}

}  // namespace dls
