// Heavy-path decomposition of a part's spanning tree — the machinery behind
// our implementation of Lemma 15 (general parts → path-restricted
// instances). Every node of the part lies on exactly one heavy path; the
// head of each non-root path hangs off a node of a path with strictly
// smaller path-depth, and the path-depth is O(log |part|). Aggregating a
// part therefore takes one path-restricted PA call per depth level going up
// (deposit at the attach node between levels) and one per level going down.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dls {

struct HeavyPathDecomposition {
  /// Each path is a node sequence from head (closest to the root) to tail;
  /// consecutive nodes are adjacent in G. Every part node appears exactly once.
  std::vector<std::vector<NodeId>> paths;
  /// For each path: the parent (in the part's spanning tree) of its head, or
  /// kInvalidNode for the root path. The attach node lies on a path of
  /// strictly smaller depth and is adjacent to the head in G.
  std::vector<NodeId> attach;
  /// Path-depth: 0 for the root path; child path depth = attach path depth+1.
  std::vector<std::uint32_t> depth;
  std::uint32_t max_depth = 0;
};

/// Decomposes the BFS spanning tree of G[part] (part must induce a connected
/// subgraph). Heavy child = largest subtree, ties by node id.
HeavyPathDecomposition heavy_path_decomposition(const Graph& g,
                                                const std::vector<NodeId>& part);

/// Validation: consecutive adjacency, exact cover, depth bound O(log |part|)
/// (checked as depth ≤ ⌈log₂(|part|+1)⌉).
bool is_valid_heavy_path_decomposition(const Graph& g,
                                       const std::vector<NodeId>& part,
                                       const HeavyPathDecomposition& hpd);

}  // namespace dls
