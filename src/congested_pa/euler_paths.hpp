// Euler-tour path decomposition of parts — the mechanism in the paper's own
// proof of Lemma 15 ("this is first established under the assumption that
// individual parts correspond to simple paths, and then we extend our
// results to general parts by following [29]").
//
// A part's spanning-tree Euler tour (each tree edge walked twice) is split
// greedily into maximal simple-path segments; consecutive segments share
// their cut node, so segment aggregates can be chained back into the part
// aggregate. The catch — and the reason the library's default reduction
// uses heavy paths instead — is congestion inflation: a node of tree-degree
// d appears d times on the tour, so the segment instance's congestion can
// reach Σ_parts deg_T(v) instead of ρ. `euler_path_decomposition` exposes
// both the segments and the measured inflation so the trade-off is
// quantified (experiment E17) rather than assumed.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace dls {

struct EulerPathDecomposition {
  /// Maximal simple-path segments covering the part's Euler tour in order;
  /// consecutive segments share exactly their boundary node.
  std::vector<std::vector<NodeId>> segments;
  /// First tour occurrence of each part node: (segment, offset). Aggregation
  /// assigns the node's input there and identities elsewhere.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> first_occurrence;
  std::vector<NodeId> part_nodes;  // aligned with first_occurrence
};

/// Decomposes G[part]'s BFS-tree Euler tour into simple path segments.
EulerPathDecomposition euler_path_decomposition(const Graph& g,
                                                const std::vector<NodeId>& part);

/// Structural validation: segments simple + consecutive-adjacent, chained at
/// shared endpoints, first occurrences consistent, all part nodes covered.
bool is_valid_euler_decomposition(const Graph& g,
                                  const std::vector<NodeId>& part,
                                  const EulerPathDecomposition& epd);

/// The congestion of the segment multiset produced by decomposing every
/// part of a collection (the inflation Lemma 15 has to pay for).
std::size_t euler_segment_congestion(const Graph& g,
                                     const std::vector<std::vector<NodeId>>& parts);

}  // namespace dls
