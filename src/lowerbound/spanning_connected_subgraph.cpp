#include "lowerbound/spanning_connected_subgraph.hpp"

#include <algorithm>
#include <cmath>

#include "graph/algorithms.hpp"

namespace dls {

bool is_spanning_connected(const Graph& g,
                           std::span<const EdgeId> subgraph_edges) {
  UnionFind uf(g.num_nodes());
  for (EdgeId e : subgraph_edges) {
    DLS_REQUIRE(e < g.num_edges(), "subgraph edge out of range");
    uf.unite(g.edge(e).u, g.edge(e).v);
  }
  return uf.num_sets() == 1;
}

ScsDecision decide_spanning_connected_via_laplacian(
    const Graph& g, std::span<const EdgeId> subgraph_edges, OracleKind kind,
    Rng& rng, int probes) {
  DLS_REQUIRE(is_connected(g), "SCS reduction needs a connected network");
  const std::size_t n = g.num_nodes();
  ScsDecision decision;
  if (n <= 1) {
    decision.connected = true;
    return decision;
  }

  // H' = G reweighted: H-edges keep their weight (≥ 1 effective), all other
  // edges get ε ≤ 1/(16·m·n²). Injecting one unit at s and extracting 1/n
  // everywhere separates the potential spread max−min deterministically:
  //   H spanning-connected → spread ≤ max R_H(u,v) ≤ n − 1
  //   some component misses s → it sinks ≥ 1/n of current across an ε-cut
  //     of conductance ≤ m·ε, so spread ≥ (1/n)/(m·ε) ≥ 16n.
  const double epsilon_weight =
      1.0 / (16.0 * static_cast<double>(g.num_edges()) *
             static_cast<double>(n) * static_cast<double>(n));
  Graph reweighted(n);
  std::vector<char> in_h(g.num_edges(), 0);
  for (EdgeId e : subgraph_edges) in_h[e] = 1;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    reweighted.add_edge(edge.u, edge.v,
                        in_h[e] ? std::max(edge.weight, 1.0) : epsilon_weight);
  }

  std::unique_ptr<CongestedPaOracle> oracle;
  switch (kind) {
    case OracleKind::kShortcut:
      oracle = std::make_unique<ShortcutPaOracle>(reweighted, rng);
      break;
    case OracleKind::kBaseline:
      oracle = std::make_unique<BaselinePaOracle>(reweighted, rng);
      break;
    case OracleKind::kNcc:
      oracle = std::make_unique<NccPaOracle>(reweighted, rng);
      break;
  }

  LaplacianSolverOptions options;
  options.tolerance = 1e-8;  // spread detection needs a few accurate digits
  DistributedLaplacianSolver solver(*oracle, rng, options);

  // Any single probe detects ANY disconnection (the statistic is the global
  // potential spread, learned by every node via one more aggregation);
  // extra probes only harden against numerical corner cases.
  const double threshold = 4.0 * static_cast<double>(n);
  decision.connected = true;
  for (int p = 0; p < probes; ++p) {
    const NodeId s = static_cast<NodeId>(rng.next_below(n));
    Vec b(n, -1.0 / static_cast<double>(n));
    b[s] += 1.0;
    const LaplacianSolveReport report = solver.solve(b);
    decision.residual = std::max(decision.residual, report.relative_residual);
    const auto [min_it, max_it] =
        std::minmax_element(report.x.begin(), report.x.end());
    if (*max_it - *min_it > threshold) decision.connected = false;
  }
  decision.local_rounds = oracle->ledger().total_local();
  decision.global_rounds = oracle->ledger().total_global();
  decision.pa_calls = oracle->pa_calls();
  return decision;
}

std::vector<EdgeId> random_scs_instance(const Graph& g, Rng& rng,
                                        std::size_t drop, std::size_t extra) {
  const std::vector<EdgeId> tree = bfs_tree_edges(g, 0);
  std::vector<EdgeId> edges = tree;
  rng.shuffle(edges);
  DLS_REQUIRE(drop <= edges.size(), "cannot drop more edges than the tree has");
  edges.resize(edges.size() - drop);
  std::vector<char> used(g.num_edges(), 0);
  for (EdgeId e : edges) used[e] = 1;
  for (std::size_t i = 0; i < extra && g.num_edges() > 0; ++i) {
    const EdgeId e = static_cast<EdgeId>(rng.next_below(g.num_edges()));
    if (!used[e]) {
      used[e] = 1;
      edges.push_back(e);
    }
  }
  return edges;
}

}  // namespace dls
