// The spanning connected subgraph (SCS) problem [13] and its reduction from
// Laplacian solving (Theorem 1 / Theorem 29).
//
// Input: a subgraph H of the network G, each node knowing its incident
// H-edges; every node must learn whether H is connected and spans G.
// Theorem 29 shows any always-correct algorithm needs Ω̃(SQ(G)) rounds; the
// paper's Theorem 1 lifts this to Laplacian solving by observing that a
// solver with error ε ≤ 1/2 decides SCS: solve L_H x = e_s − e_t for probe
// pairs — if s and t lie in different H-components the rhs is not in
// range(L_H) and the residual stays Ω(1), which every node can detect with
// one more aggregation.
#pragma once

#include <span>

#include "laplacian/pa_oracle.hpp"
#include "laplacian/recursive_solver.hpp"

namespace dls {

/// Ground truth: is the edge-induced subgraph H = (V(G), subgraph_edges)
/// connected and spanning?
bool is_spanning_connected(const Graph& g, std::span<const EdgeId> subgraph_edges);

struct ScsDecision {
  bool connected = false;
  double residual = 0.0;         // worst probe-solve residual
  std::uint64_t local_rounds = 0;
  std::uint64_t global_rounds = 0;
  std::uint64_t pa_calls = 0;
};

enum class OracleKind { kShortcut, kBaseline, kNcc };

/// Decides SCS via the Laplacian-solver reduction of Theorem 1. The solver
/// runs on G reweighted so H-edges keep their weight and non-H edges get an
/// ε ≤ 1/(16mn²); injecting one unit of current at a probe node and
/// extracting 1/n everywhere makes the global potential spread ≤ n−1 when H
/// is spanning-connected and ≥ 16n when any component misses the probe —
/// a deterministic gap every node can threshold after one aggregation.
/// A single probe suffices; `probes` repeats harden numerical corner cases.
ScsDecision decide_spanning_connected_via_laplacian(
    const Graph& g, std::span<const EdgeId> subgraph_edges, OracleKind kind,
    Rng& rng, int probes = 2);

/// Generates a random subgraph that is spanning-connected with probability
/// ~1/2: a spanning tree with `drop` random tree edges removed (drop = 0
/// keeps it connected) plus `extra` random non-tree edges.
std::vector<EdgeId> random_scs_instance(const Graph& g, Rng& rng,
                                        std::size_t drop, std::size_t extra);

}  // namespace dls
