// End-to-end certified Laplacian solves: never return a silently wrong x.
//
// The message plane's integrity words (sim/sync_network.hpp) and the PA-call
// cross-checks (laplacian/pa_oracle.cpp) catch corruption *inside* the
// solve. CertifiedSolve closes the remaining gap — the hop that ships the
// finished solution to its consumer — and certifies the whole answer at the
// algorithm level, where a residual bound is available that no transport
// checksum can offer:
//
//   1. solve L x = b through the wrapped DistributedLaplacianSolver;
//   2. deliver x to the client over a (possibly corrupting) FaultPlan hop,
//      one payload word per coordinate. With delivery integrity on, a
//      corrupted word fails its checksum and is retransmitted — the client
//      receives x bit-exactly. With it off, the perturbed x̃ arrives
//      silently — which is what the certificate exists to catch;
//   3. certify the received x̃ with BOTH checks, each necessary:
//        * transport checksum: vector_checksum(x) == vector_checksum(x̃)
//          (order-invariant; catches any bit difference, including low-bit
//          perturbations small enough to hide under the residual bound);
//        * residual certificate: the independently recomputed
//          ‖Πb − L x̃‖/‖Πb‖ is within tolerance (catches a wrong x even if
//          transport was clean — e.g. corruption that slipped through the
//          solve itself — which no transport checksum can see);
//   4. on rejection, record a kCertificateResolve RecoveryEvent, escalate to
//      the SupervisedPaOracle if one is wired (repeated failures demote the
//      primary to the baseline), and re-solve + re-deliver on a fresh fault
//      epoch, up to resolve_budget times;
//   5. when every attempt is rejected, return a typed DegradedResult (with
//      the last rejected certificate attached) — the caller always receives
//      either a certified answer or an explicit refusal, never a silently
//      wrong vector.
//
// Certificate communication is charged honestly when charge_certificate is
// on: delivery rounds under "verify/delivery", the recomputed residual via
// DistributedLaplacianSolver::charge_residual_certificate, the checksum
// exchange under "verify/solution-checksum". With no delivery plan and
// charging off, a clean solve() is bit-identical to the unwrapped solver's.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "laplacian/recursive_solver.hpp"
#include "resilience/solve_supervisor.hpp"
#include "verify/aggregation_checksum.hpp"

namespace dls {

struct CertifiedSolveOptions {
  /// Residual acceptance bound; 0 (default) derives it as the solver's
  /// configured tolerance × tolerance_slack. The slack absorbs the honest
  /// gap between the solver's internal convergence test and the recomputed
  /// certificate (same 2× the solver itself allows, plus roundoff headroom).
  double residual_tolerance = 0.0;
  double tolerance_slack = 8.0;
  /// Certificate-triggered re-solves before giving up typed. Re-solves are
  /// replays (measured costs are cached), but re-delivery opens a fresh
  /// fault epoch — different corruption coordinates — so one re-solve
  /// normally suffices under sub-certainty corruption rates.
  std::size_t resolve_budget = 1;
  /// Charge certificate + delivery communication to the oracle's ledger.
  bool charge_certificate = true;
  /// Fault plan of the solution-delivery hop (nullptr = clean delivery).
  /// Not owned; epochs are consumed (one per delivery attempt).
  FaultPlan* delivery_faults = nullptr;
  /// Ship every delivered coordinate with a checksum word: corrupted words
  /// are detected and retransmitted (bit-exact delivery, extra rounds + one
  /// word per retransmission), instead of arriving silently perturbed.
  bool delivery_integrity = false;
  /// Optional escalation target: certificate failures are reported via
  /// note_certificate_failure, so repeated rejections demote the primary
  /// oracle to the baseline through the existing ladder. Not owned.
  SupervisedPaOracle* supervisor = nullptr;
};

/// Outcome of certifying one delivered solution.
struct SolveCertificate {
  bool checksum_ok = false;
  bool residual_ok = false;
  bool accepted = false;  // checksum_ok && residual_ok
  double residual = 0.0;   // recomputed ‖Πb − L x̃‖ / ‖Πb‖
  double tolerance = 0.0;  // bound residual was checked against
  std::uint64_t expected_checksum = 0;  // sender-side digest of x
  std::uint64_t observed_checksum = 0;  // receiver-side digest of x̃
  // Delivery-hop accounting for this attempt.
  std::uint64_t delivery_rounds = 0;
  std::uint64_t delivery_corruptions = 0;      // words the plan perturbed
  std::uint64_t delivery_retransmissions = 0;  // detected ⇒ re-sent words
  std::uint64_t delivery_checksum_words = 0;   // integrity words shipped
};

struct CertifiedSolveReport {
  /// The returned solve: x is the *delivered* vector x̃ of the final attempt
  /// (bit-identical to the solver's x whenever the certificate accepted).
  LaplacianSolveReport solve;
  SolveCertificate certificate;  // certificate of the returned x
  std::vector<SolveCertificate> rejected;  // one per discarded attempt
  std::size_t attempts = 0;
  /// Set iff no attempt was certified: the wrapped solver degraded, or the
  /// resolve budget ran out with every certificate rejected. Mirrors
  /// solve.degraded so callers branch the same way they do on the solver.
  std::optional<DegradedResult> degraded;
};

class CertifiedSolve {
 public:
  /// `solver` (and anything referenced by `options`) must outlive this
  /// wrapper.
  explicit CertifiedSolve(DistributedLaplacianSolver& solver,
                          CertifiedSolveOptions options = {});

  CertifiedSolveReport solve(const Vec& b);

  const CertifiedSolveOptions& options() const { return options_; }
  std::uint64_t certificates_checked() const { return checked_; }
  std::uint64_t certificates_failed() const { return failed_; }

 private:
  /// Ships x over the delivery plan into `out`, filling the delivery_*
  /// fields of `cert`. Throws ChaosAbortError when a coordinate exceeds the
  /// plan's round_limit (permanently corrupting hop under integrity).
  void deliver(const Vec& x, Vec& out, SolveCertificate& cert);
  /// Fills the check fields of `cert` (delivery fields already set) and
  /// charges the certificate communication.
  void certify(const Vec& b, const Vec& x, const Vec& delivered,
               SolveCertificate& cert);

  DistributedLaplacianSolver& solver_;
  CertifiedSolveOptions options_;
  std::uint64_t checked_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace dls
