#include "verify/aggregation_checksum.hpp"

#include <cstring>

namespace dls {

namespace {

std::uint64_t splitmix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t value_digest(std::uint64_t subject, double value) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  // Two finalizer passes: the first spreads the subject, the second binds the
  // exact value bits to it. ±0.0 and NaN payload patterns digest as the bit
  // patterns they are — the certificate certifies transport, not semantics.
  return splitmix64(splitmix64(subject) ^ bits);
}

void AggregationChecksum::add(std::uint64_t subject, double value) {
  sum_ += value_digest(subject, value);  // uint64 wrap is the group op
  ++count_;
}

void AggregationChecksum::merge(const AggregationChecksum& other) {
  sum_ += other.sum_;
  count_ += other.count_;
}

std::uint64_t vector_checksum(const Vec& x) {
  AggregationChecksum checksum;
  for (std::size_t i = 0; i < x.size(); ++i) {
    checksum.add(static_cast<std::uint64_t>(i), x[i]);
  }
  return checksum.digest();
}

}  // namespace dls
