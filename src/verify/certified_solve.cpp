#include "verify/certified_solve.hpp"

#include <algorithm>
#include <utility>

#include "linalg/laplacian.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/fault_injection.hpp"
#include "util/assert.hpp"

namespace dls {

CertifiedSolve::CertifiedSolve(DistributedLaplacianSolver& solver,
                               CertifiedSolveOptions options)
    : solver_(solver), options_(std::move(options)) {
  DLS_REQUIRE(options_.tolerance_slack >= 1.0,
              "tolerance_slack must be >= 1 (tighter than the solver's own "
              "convergence test would reject healthy solves)");
}

void CertifiedSolve::deliver(const Vec& x, Vec& out, SolveCertificate& cert) {
  out = x;
  FaultPlan* plan = options_.delivery_faults;
  if (plan == nullptr) return;
  // Fresh epoch per delivery attempt: a re-delivery consults different
  // coordinates of the same seeded schedule, so retries are not doomed to
  // replay the corruption that was just rejected.
  plan->begin_epoch();
  const bool integrity = options_.delivery_integrity;
  const std::uint64_t limit = plan->config().round_limit;
  std::uint64_t max_round = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::uint64_t round = 1;
    for (;;) {
      if (round > limit) {
        throw ChaosAbortError(
            "certified delivery exceeded its round budget at coordinate " +
                std::to_string(i),
            RoundLedger{});
      }
      const MessageFate fate = plan->message_fate(round, i, 0, 0);
      if (integrity) ++cert.delivery_checksum_words;
      if (fate.dropped) {
        ++cert.delivery_retransmissions;
        ++round;
        continue;
      }
      if (fate.corrupted) {
        ++cert.delivery_corruptions;
        if (integrity) {
          // Receiver-side checksum mismatch: the word is discarded like a
          // drop and re-requested — delivery stays bit-exact, paid in rounds.
          ++cert.delivery_retransmissions;
          ++round;
          continue;
        }
        out[i] = corrupt_payload(x[i], fate.corrupt_mask);
        break;
      }
      break;
    }
    max_round = std::max(max_round, round);
  }
  // The delivery is a scatter: all coordinates ship in parallel over
  // disjoint client links, so its round cost is the slowest coordinate;
  // with integrity each transmission holds its link for two rounds.
  cert.delivery_rounds = max_round * (integrity ? 2 : 1);
  if (options_.charge_certificate && cert.delivery_rounds > 0) {
    solver_.oracle().ledger().charge_local(cert.delivery_rounds,
                                           "verify/delivery");
  }
}

void CertifiedSolve::certify(const Vec& b, const Vec& x, const Vec& delivered,
                             SolveCertificate& cert) {
  cert.expected_checksum = vector_checksum(x);
  cert.observed_checksum = vector_checksum(delivered);
  cert.checksum_ok = cert.expected_checksum == cert.observed_checksum;
  // Independently recomputed residual against the delivered vector: Πb is
  // re-derived here, not taken from the solver, so a wrong x cannot vouch
  // for itself through state it contaminated.
  Vec rhs = b;
  project_mean_zero(rhs);
  Vec residual = sub(rhs, laplacian_apply(solver_.graph(), delivered));
  project_mean_zero(residual);
  const double b_norm = norm2(rhs);
  cert.residual = b_norm > 0 ? norm2(residual) / b_norm : 0.0;
  cert.tolerance = options_.residual_tolerance > 0
                       ? options_.residual_tolerance
                       : solver_.options().tolerance * options_.tolerance_slack;
  cert.residual_ok = cert.residual <= cert.tolerance;
  cert.accepted = cert.checksum_ok && cert.residual_ok;
  if (options_.charge_certificate) {
    try {
      // Rounds of the distributed certificate: residual entries + global
      // norm aggregation, and one aggregated word settling the digest
      // comparison. On a wedged substrate the charge itself can abort; the
      // numerical verdict above stands either way, so the abort is absorbed
      // (degraded solves already returned typed before certification).
      solver_.charge_residual_certificate();
      solver_.oracle().ledger().charge_local(1, "verify/solution-checksum");
    } catch (const ChaosAbortError&) {
    }
  }
  ++checked_;
  static MetricCounter& passed_metric =
      MetricsRegistry::global().counter("verify.certificates.passed");
  static MetricCounter& failed_metric =
      MetricsRegistry::global().counter("verify.certificates.failed");
  static MetricCounter& mismatch_metric =
      MetricsRegistry::global().counter("verify.checksum.mismatches");
  if (!cert.checksum_ok) mismatch_metric.increment();
  if (cert.accepted) {
    passed_metric.increment();
  } else {
    ++failed_;
    failed_metric.increment();
  }
}

namespace {

std::string describe_rejection(const SolveCertificate& cert) {
  std::string reason;
  if (!cert.checksum_ok) {
    reason += "solution checksum mismatch (expected " +
              std::to_string(cert.expected_checksum) + ", observed " +
              std::to_string(cert.observed_checksum) + ")";
  }
  if (!cert.residual_ok) {
    if (!reason.empty()) reason += "; ";
    reason += "residual certificate " + std::to_string(cert.residual) +
              " exceeds tolerance " + std::to_string(cert.tolerance);
  }
  if (reason.empty()) reason = "delivery aborted";
  return reason;
}

}  // namespace

CertifiedSolveReport CertifiedSolve::solve(const Vec& b) {
  CertifiedSolveReport report;
  Tracer* tracer = Tracer::ambient();
  ScopedSpan span(tracer, "verify/certified-solve", SpanKind::kSolve);
  static MetricCounter& resolve_metric =
      MetricsRegistry::global().counter("verify.resolves");
  static MetricCounter& abort_metric =
      MetricsRegistry::global().counter("verify.aborts");
  std::string last_reason;
  for (std::size_t attempt = 0; attempt <= options_.resolve_budget;
       ++attempt) {
    ++report.attempts;
    LaplacianSolveReport solve_report = solver_.solve(b);
    SolveCertificate cert;
    Vec delivered;
    bool delivery_wedged = false;
    try {
      deliver(solve_report.x, delivered, cert);
    } catch (const ChaosAbortError& e) {
      delivery_wedged = true;
      last_reason = e.what();
      delivered = solve_report.x;  // best effort, for the report only
    }
    certify(b, solve_report.x, delivered, cert);
    if (delivery_wedged) cert.accepted = false;
    if (solve_report.degraded.has_value()) {
      // The solver already gave up typed; the certificate of the partial
      // iterate is attached for observability, and the degradation is
      // returned as-is — re-solving a degraded solve re-runs the same
      // exhausted ladder.
      report.degraded = solve_report.degraded;
      solve_report.x = std::move(delivered);
      report.solve = std::move(solve_report);
      report.certificate = cert;
      span.counter("attempts", report.attempts);
      span.counter("accepted", 0);
      return report;
    }
    if (cert.accepted) {
      solve_report.x = std::move(delivered);
      report.solve = std::move(solve_report);
      report.certificate = cert;
      span.counter("attempts", report.attempts);
      span.counter("accepted", 1);
      return report;
    }
    // Rejected: account the detection, escalate, and (budget allowing)
    // re-solve + re-deliver on a fresh fault epoch.
    if (!delivery_wedged) last_reason = describe_rejection(cert);
    if (options_.supervisor != nullptr) {
      options_.supervisor->note_certificate_failure(attempt,
                                                    cert.delivery_rounds,
                                                    last_reason);
    } else {
      RecoveryEvent event;
      event.action = RecoveryAction::kCertificateResolve;
      event.subject = 0;
      event.attempt = static_cast<std::uint32_t>(attempt + 1);
      event.rounds_lost = cert.delivery_rounds;
      event.detail = last_reason;
      solver_.oracle().ledger().record_recovery(std::move(event));
    }
    report.rejected.push_back(cert);
    report.solve = std::move(solve_report);
    report.solve.x = std::move(delivered);
    report.certificate = cert;
    if (attempt < options_.resolve_budget) resolve_metric.increment();
  }
  // Every attempt rejected: refuse typed — never a silently wrong answer.
  abort_metric.increment();
  DegradedResult degraded;
  degraded.tier = EscalationTier::kExhausted;
  degraded.reason = "solve certificate rejected " +
                    std::to_string(report.attempts) +
                    " time(s): " + last_reason;
  degraded.completed_iterations = report.solve.outer_iterations;
  degraded.partial_residual = report.certificate.residual;
  RecoveryEvent event;
  event.action = RecoveryAction::kAbort;
  event.subject = 0;
  event.attempt = static_cast<std::uint32_t>(report.attempts);
  event.detail = degraded.reason;
  solver_.oracle().ledger().record_recovery(std::move(event));
  report.solve.degraded = degraded;
  report.degraded = std::move(degraded);
  span.counter("attempts", report.attempts);
  span.counter("accepted", 0);
  return report;
}

}  // namespace dls
