// Order- and duplicate-invariant checksums for distributed aggregations.
//
// A convergecast folds contributions in whatever order the scheduler's
// contention resolution produces, and a FaultPlan can clone messages; a
// useful integrity digest must therefore be invariant to both. The digest
// here is the wrapped-uint64 *sum* of one splitmix-style hash per
// (subject, value-bits) contribution:
//
//   * order-invariant: addition commutes, so any fold order over the same
//     contribution multiset yields the same digest;
//   * duplicate-invariant: consumers deduplicate arrivals per subject (the
//     scheduler's received/informed flags), so each subject contributes its
//     hash exactly once no matter how many copies crossed the wire;
//   * value-sensitive: the hash covers the exact IEEE-754 bit pattern, so a
//     single flipped mantissa bit (corrupt_payload's perturbation) changes
//     the digest with overwhelming probability — unlike the aggregate
//     itself, where a low-bit perturbation can hide under a tolerance.
//
// This is the checksum side of the verify layer's certificates: a sender
// digests what it holds, the receiver digests what it observed, and equality
// certifies the transported multiset bit-for-bit (up to 2^-64 collisions).
#pragma once

#include <cstdint>

#include "linalg/vector_ops.hpp"

namespace dls {

/// Hash of one (subject, value) contribution: splitmix64 of the subject
/// re-mixed with the value's IEEE-754 bit pattern. Pure and seedless — two
/// parties digest independently and compare.
std::uint64_t value_digest(std::uint64_t subject, double value);

/// Commutative digest accumulator (see file comment). Default-constructed ==
/// digest of the empty contribution set.
class AggregationChecksum {
 public:
  void add(std::uint64_t subject, double value);
  /// Folds another accumulator in (the convergecast combine step).
  void merge(const AggregationChecksum& other);

  std::uint64_t digest() const { return sum_; }
  std::uint64_t count() const { return count_; }
  bool matches(const AggregationChecksum& other) const {
    return sum_ == other.sum_ && count_ == other.count_;
  }

  friend bool operator==(const AggregationChecksum&,
                         const AggregationChecksum&) = default;

 private:
  std::uint64_t sum_ = 0;    // wrapped sum of contribution hashes
  std::uint64_t count_ = 0;  // contributions folded (guards empty==empty)
};

/// Digest of a full vector: contribution (i, x[i]) for every coordinate.
/// The solution-transport certificate compares the sender's digest of x with
/// the receiver's digest of the delivered x̃.
std::uint64_t vector_checksum(const Vec& x);

}  // namespace dls
