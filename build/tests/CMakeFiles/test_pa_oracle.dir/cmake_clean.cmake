file(REMOVE_RECURSE
  "CMakeFiles/test_pa_oracle.dir/test_pa_oracle.cpp.o"
  "CMakeFiles/test_pa_oracle.dir/test_pa_oracle.cpp.o.d"
  "test_pa_oracle"
  "test_pa_oracle.pdb"
  "test_pa_oracle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pa_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
