# Empty dependencies file for test_pa_oracle.
# This may be replaced when dependencies are built.
