file(REMOVE_RECURSE
  "CMakeFiles/test_ultra_sparsifier.dir/test_ultra_sparsifier.cpp.o"
  "CMakeFiles/test_ultra_sparsifier.dir/test_ultra_sparsifier.cpp.o.d"
  "test_ultra_sparsifier"
  "test_ultra_sparsifier.pdb"
  "test_ultra_sparsifier[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ultra_sparsifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
