# Empty compiler generated dependencies file for test_ultra_sparsifier.
# This may be replaced when dependencies are built.
