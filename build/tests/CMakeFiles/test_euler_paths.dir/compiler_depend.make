# Empty compiler generated dependencies file for test_euler_paths.
# This may be replaced when dependencies are built.
