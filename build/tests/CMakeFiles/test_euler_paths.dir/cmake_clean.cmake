file(REMOVE_RECURSE
  "CMakeFiles/test_euler_paths.dir/test_euler_paths.cpp.o"
  "CMakeFiles/test_euler_paths.dir/test_euler_paths.cpp.o.d"
  "test_euler_paths"
  "test_euler_paths.pdb"
  "test_euler_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_euler_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
