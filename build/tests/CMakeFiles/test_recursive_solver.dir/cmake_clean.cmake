file(REMOVE_RECURSE
  "CMakeFiles/test_recursive_solver.dir/test_recursive_solver.cpp.o"
  "CMakeFiles/test_recursive_solver.dir/test_recursive_solver.cpp.o.d"
  "test_recursive_solver"
  "test_recursive_solver.pdb"
  "test_recursive_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recursive_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
