# Empty compiler generated dependencies file for test_recursive_solver.
# This may be replaced when dependencies are built.
