# Empty compiler generated dependencies file for test_shortcuts.
# This may be replaced when dependencies are built.
