file(REMOVE_RECURSE
  "CMakeFiles/test_shortcuts.dir/test_shortcuts.cpp.o"
  "CMakeFiles/test_shortcuts.dir/test_shortcuts.cpp.o.d"
  "test_shortcuts"
  "test_shortcuts.pdb"
  "test_shortcuts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_shortcuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
