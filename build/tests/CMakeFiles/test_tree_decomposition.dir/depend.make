# Empty dependencies file for test_tree_decomposition.
# This may be replaced when dependencies are built.
