# Empty dependencies file for test_edge_coloring.
# This may be replaced when dependencies are built.
