file(REMOVE_RECURSE
  "CMakeFiles/test_electrical.dir/test_electrical.cpp.o"
  "CMakeFiles/test_electrical.dir/test_electrical.cpp.o.d"
  "test_electrical"
  "test_electrical.pdb"
  "test_electrical[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_electrical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
