# Empty compiler generated dependencies file for test_electrical.
# This may be replaced when dependencies are built.
