file(REMOVE_RECURSE
  "CMakeFiles/test_layered_graph.dir/test_layered_graph.cpp.o"
  "CMakeFiles/test_layered_graph.dir/test_layered_graph.cpp.o.d"
  "test_layered_graph"
  "test_layered_graph.pdb"
  "test_layered_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layered_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
