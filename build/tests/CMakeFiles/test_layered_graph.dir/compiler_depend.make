# Empty compiler generated dependencies file for test_layered_graph.
# This may be replaced when dependencies are built.
