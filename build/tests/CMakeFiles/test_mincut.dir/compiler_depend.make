# Empty compiler generated dependencies file for test_mincut.
# This may be replaced when dependencies are built.
