file(REMOVE_RECURSE
  "CMakeFiles/test_mincut.dir/test_mincut.cpp.o"
  "CMakeFiles/test_mincut.dir/test_mincut.cpp.o.d"
  "test_mincut"
  "test_mincut.pdb"
  "test_mincut[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mincut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
