file(REMOVE_RECURSE
  "CMakeFiles/test_heavy_paths.dir/test_heavy_paths.cpp.o"
  "CMakeFiles/test_heavy_paths.dir/test_heavy_paths.cpp.o.d"
  "test_heavy_paths"
  "test_heavy_paths.pdb"
  "test_heavy_paths[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heavy_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
