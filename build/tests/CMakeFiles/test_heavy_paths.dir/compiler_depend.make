# Empty compiler generated dependencies file for test_heavy_paths.
# This may be replaced when dependencies are built.
