# Empty compiler generated dependencies file for test_round_bounds.
# This may be replaced when dependencies are built.
