file(REMOVE_RECURSE
  "CMakeFiles/test_round_bounds.dir/test_round_bounds.cpp.o"
  "CMakeFiles/test_round_bounds.dir/test_round_bounds.cpp.o.d"
  "test_round_bounds"
  "test_round_bounds.pdb"
  "test_round_bounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_round_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
