file(REMOVE_RECURSE
  "CMakeFiles/test_aggregation_scheduler.dir/test_aggregation_scheduler.cpp.o"
  "CMakeFiles/test_aggregation_scheduler.dir/test_aggregation_scheduler.cpp.o.d"
  "test_aggregation_scheduler"
  "test_aggregation_scheduler.pdb"
  "test_aggregation_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aggregation_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
