# Empty dependencies file for test_aggregation_scheduler.
# This may be replaced when dependencies are built.
