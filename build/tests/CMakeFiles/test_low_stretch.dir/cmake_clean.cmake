file(REMOVE_RECURSE
  "CMakeFiles/test_low_stretch.dir/test_low_stretch.cpp.o"
  "CMakeFiles/test_low_stretch.dir/test_low_stretch.cpp.o.d"
  "test_low_stretch"
  "test_low_stretch.pdb"
  "test_low_stretch[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_low_stretch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
