# Empty dependencies file for test_low_stretch.
# This may be replaced when dependencies are built.
