file(REMOVE_RECURSE
  "CMakeFiles/test_quality_estimator.dir/test_quality_estimator.cpp.o"
  "CMakeFiles/test_quality_estimator.dir/test_quality_estimator.cpp.o.d"
  "test_quality_estimator"
  "test_quality_estimator.pdb"
  "test_quality_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quality_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
