# Empty compiler generated dependencies file for test_quality_estimator.
# This may be replaced when dependencies are built.
