# Empty compiler generated dependencies file for test_ncc.
# This may be replaced when dependencies are built.
