file(REMOVE_RECURSE
  "CMakeFiles/test_ncc.dir/test_ncc.cpp.o"
  "CMakeFiles/test_ncc.dir/test_ncc.cpp.o.d"
  "test_ncc"
  "test_ncc.pdb"
  "test_ncc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ncc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
