file(REMOVE_RECURSE
  "CMakeFiles/test_minor_density.dir/test_minor_density.cpp.o"
  "CMakeFiles/test_minor_density.dir/test_minor_density.cpp.o.d"
  "test_minor_density"
  "test_minor_density.pdb"
  "test_minor_density[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minor_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
