# Empty dependencies file for test_minor_density.
# This may be replaced when dependencies are built.
