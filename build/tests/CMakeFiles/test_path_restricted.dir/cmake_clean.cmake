file(REMOVE_RECURSE
  "CMakeFiles/test_path_restricted.dir/test_path_restricted.cpp.o"
  "CMakeFiles/test_path_restricted.dir/test_path_restricted.cpp.o.d"
  "test_path_restricted"
  "test_path_restricted.pdb"
  "test_path_restricted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_restricted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
