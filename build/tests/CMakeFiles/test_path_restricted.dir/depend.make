# Empty dependencies file for test_path_restricted.
# This may be replaced when dependencies are built.
