file(REMOVE_RECURSE
  "CMakeFiles/test_harmonic.dir/test_harmonic.cpp.o"
  "CMakeFiles/test_harmonic.dir/test_harmonic.cpp.o.d"
  "test_harmonic"
  "test_harmonic.pdb"
  "test_harmonic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harmonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
