file(REMOVE_RECURSE
  "CMakeFiles/test_minor.dir/test_minor.cpp.o"
  "CMakeFiles/test_minor.dir/test_minor.cpp.o.d"
  "test_minor"
  "test_minor.pdb"
  "test_minor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
