# Empty compiler generated dependencies file for test_minor.
# This may be replaced when dependencies are built.
