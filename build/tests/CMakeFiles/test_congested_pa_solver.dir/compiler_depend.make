# Empty compiler generated dependencies file for test_congested_pa_solver.
# This may be replaced when dependencies are built.
