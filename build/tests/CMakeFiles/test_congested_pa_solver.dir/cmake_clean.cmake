file(REMOVE_RECURSE
  "CMakeFiles/test_congested_pa_solver.dir/test_congested_pa_solver.cpp.o"
  "CMakeFiles/test_congested_pa_solver.dir/test_congested_pa_solver.cpp.o.d"
  "test_congested_pa_solver"
  "test_congested_pa_solver.pdb"
  "test_congested_pa_solver[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_congested_pa_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
