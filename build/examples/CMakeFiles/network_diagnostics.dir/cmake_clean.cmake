file(REMOVE_RECURSE
  "CMakeFiles/network_diagnostics.dir/network_diagnostics.cpp.o"
  "CMakeFiles/network_diagnostics.dir/network_diagnostics.cpp.o.d"
  "network_diagnostics"
  "network_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
