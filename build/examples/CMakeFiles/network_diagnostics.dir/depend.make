# Empty dependencies file for network_diagnostics.
# This may be replaced when dependencies are built.
