# Empty compiler generated dependencies file for harmonic_labels.
# This may be replaced when dependencies are built.
