file(REMOVE_RECURSE
  "CMakeFiles/harmonic_labels.dir/harmonic_labels.cpp.o"
  "CMakeFiles/harmonic_labels.dir/harmonic_labels.cpp.o.d"
  "harmonic_labels"
  "harmonic_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/harmonic_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
