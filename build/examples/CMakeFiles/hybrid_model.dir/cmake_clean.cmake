file(REMOVE_RECURSE
  "CMakeFiles/hybrid_model.dir/hybrid_model.cpp.o"
  "CMakeFiles/hybrid_model.dir/hybrid_model.cpp.o.d"
  "hybrid_model"
  "hybrid_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
