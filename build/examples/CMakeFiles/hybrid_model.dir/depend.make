# Empty dependencies file for hybrid_model.
# This may be replaced when dependencies are built.
