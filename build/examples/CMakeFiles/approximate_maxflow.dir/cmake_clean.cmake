file(REMOVE_RECURSE
  "CMakeFiles/approximate_maxflow.dir/approximate_maxflow.cpp.o"
  "CMakeFiles/approximate_maxflow.dir/approximate_maxflow.cpp.o.d"
  "approximate_maxflow"
  "approximate_maxflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximate_maxflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
