# Empty dependencies file for approximate_maxflow.
# This may be replaced when dependencies are built.
