# Empty dependencies file for electrical_flow.
# This may be replaced when dependencies are built.
