file(REMOVE_RECURSE
  "CMakeFiles/electrical_flow.dir/electrical_flow.cpp.o"
  "CMakeFiles/electrical_flow.dir/electrical_flow.cpp.o.d"
  "electrical_flow"
  "electrical_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/electrical_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
