file(REMOVE_RECURSE
  "CMakeFiles/mst_demo.dir/mst_demo.cpp.o"
  "CMakeFiles/mst_demo.dir/mst_demo.cpp.o.d"
  "mst_demo"
  "mst_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mst_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
