file(REMOVE_RECURSE
  "CMakeFiles/sq_explorer.dir/sq_explorer.cpp.o"
  "CMakeFiles/sq_explorer.dir/sq_explorer.cpp.o.d"
  "sq_explorer"
  "sq_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sq_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
