# Empty compiler generated dependencies file for sq_explorer.
# This may be replaced when dependencies are built.
