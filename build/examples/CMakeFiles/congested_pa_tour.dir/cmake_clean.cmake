file(REMOVE_RECURSE
  "CMakeFiles/congested_pa_tour.dir/congested_pa_tour.cpp.o"
  "CMakeFiles/congested_pa_tour.dir/congested_pa_tour.cpp.o.d"
  "congested_pa_tour"
  "congested_pa_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congested_pa_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
