# Empty compiler generated dependencies file for congested_pa_tour.
# This may be replaced when dependencies are built.
