# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--rows" "8" "--cols" "8")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_electrical_flow "/root/repo/build/examples/electrical_flow" "--rows" "6" "--cols" "6")
set_tests_properties(example_electrical_flow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_diagnostics "/root/repo/build/examples/network_diagnostics" "--side" "6" "--trials" "2")
set_tests_properties(example_network_diagnostics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hybrid_model "/root/repo/build/examples/hybrid_model" "--n" "64")
set_tests_properties(example_hybrid_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mst_demo "/root/repo/build/examples/mst_demo" "--rows" "8" "--cols" "8")
set_tests_properties(example_mst_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_approximate_maxflow "/root/repo/build/examples/approximate_maxflow" "--rows" "6" "--cols" "6" "--iters" "6")
set_tests_properties(example_approximate_maxflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_harmonic_labels "/root/repo/build/examples/harmonic_labels" "--n" "60" "--labels" "4")
set_tests_properties(example_harmonic_labels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sq_explorer "/root/repo/build/examples/sq_explorer" "--family" "grid" "--n" "64")
set_tests_properties(example_sq_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_congested_pa_tour "/root/repo/build/examples/congested_pa_tour" "--side" "6")
set_tests_properties(example_congested_pa_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
