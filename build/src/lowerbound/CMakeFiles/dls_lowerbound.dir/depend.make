# Empty dependencies file for dls_lowerbound.
# This may be replaced when dependencies are built.
