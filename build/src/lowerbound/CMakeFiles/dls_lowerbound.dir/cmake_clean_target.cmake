file(REMOVE_RECURSE
  "libdls_lowerbound.a"
)
