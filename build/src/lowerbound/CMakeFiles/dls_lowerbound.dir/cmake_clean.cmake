file(REMOVE_RECURSE
  "CMakeFiles/dls_lowerbound.dir/spanning_connected_subgraph.cpp.o"
  "CMakeFiles/dls_lowerbound.dir/spanning_connected_subgraph.cpp.o.d"
  "libdls_lowerbound.a"
  "libdls_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
