file(REMOVE_RECURSE
  "CMakeFiles/dls_shortcuts.dir/construction.cpp.o"
  "CMakeFiles/dls_shortcuts.dir/construction.cpp.o.d"
  "CMakeFiles/dls_shortcuts.dir/partition.cpp.o"
  "CMakeFiles/dls_shortcuts.dir/partition.cpp.o.d"
  "CMakeFiles/dls_shortcuts.dir/partwise_aggregation.cpp.o"
  "CMakeFiles/dls_shortcuts.dir/partwise_aggregation.cpp.o.d"
  "CMakeFiles/dls_shortcuts.dir/quality_estimator.cpp.o"
  "CMakeFiles/dls_shortcuts.dir/quality_estimator.cpp.o.d"
  "CMakeFiles/dls_shortcuts.dir/shortcut.cpp.o"
  "CMakeFiles/dls_shortcuts.dir/shortcut.cpp.o.d"
  "CMakeFiles/dls_shortcuts.dir/unicast.cpp.o"
  "CMakeFiles/dls_shortcuts.dir/unicast.cpp.o.d"
  "libdls_shortcuts.a"
  "libdls_shortcuts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_shortcuts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
