file(REMOVE_RECURSE
  "libdls_shortcuts.a"
)
