
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shortcuts/construction.cpp" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/construction.cpp.o" "gcc" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/construction.cpp.o.d"
  "/root/repo/src/shortcuts/partition.cpp" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/partition.cpp.o" "gcc" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/partition.cpp.o.d"
  "/root/repo/src/shortcuts/partwise_aggregation.cpp" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/partwise_aggregation.cpp.o" "gcc" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/partwise_aggregation.cpp.o.d"
  "/root/repo/src/shortcuts/quality_estimator.cpp" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/quality_estimator.cpp.o" "gcc" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/quality_estimator.cpp.o.d"
  "/root/repo/src/shortcuts/shortcut.cpp" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/shortcut.cpp.o" "gcc" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/shortcut.cpp.o.d"
  "/root/repo/src/shortcuts/unicast.cpp" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/unicast.cpp.o" "gcc" "src/shortcuts/CMakeFiles/dls_shortcuts.dir/unicast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
