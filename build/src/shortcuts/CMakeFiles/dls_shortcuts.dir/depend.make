# Empty dependencies file for dls_shortcuts.
# This may be replaced when dependencies are built.
