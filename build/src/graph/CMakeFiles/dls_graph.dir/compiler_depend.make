# Empty compiler generated dependencies file for dls_graph.
# This may be replaced when dependencies are built.
