file(REMOVE_RECURSE
  "CMakeFiles/dls_graph.dir/algorithms.cpp.o"
  "CMakeFiles/dls_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/dls_graph.dir/flow.cpp.o"
  "CMakeFiles/dls_graph.dir/flow.cpp.o.d"
  "CMakeFiles/dls_graph.dir/generators.cpp.o"
  "CMakeFiles/dls_graph.dir/generators.cpp.o.d"
  "CMakeFiles/dls_graph.dir/graph.cpp.o"
  "CMakeFiles/dls_graph.dir/graph.cpp.o.d"
  "CMakeFiles/dls_graph.dir/graph_io.cpp.o"
  "CMakeFiles/dls_graph.dir/graph_io.cpp.o.d"
  "CMakeFiles/dls_graph.dir/minor_density.cpp.o"
  "CMakeFiles/dls_graph.dir/minor_density.cpp.o.d"
  "CMakeFiles/dls_graph.dir/tree_decomposition.cpp.o"
  "CMakeFiles/dls_graph.dir/tree_decomposition.cpp.o.d"
  "libdls_graph.a"
  "libdls_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
