
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/algorithms.cpp" "src/graph/CMakeFiles/dls_graph.dir/algorithms.cpp.o" "gcc" "src/graph/CMakeFiles/dls_graph.dir/algorithms.cpp.o.d"
  "/root/repo/src/graph/flow.cpp" "src/graph/CMakeFiles/dls_graph.dir/flow.cpp.o" "gcc" "src/graph/CMakeFiles/dls_graph.dir/flow.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/dls_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/dls_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/dls_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/dls_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/graph_io.cpp" "src/graph/CMakeFiles/dls_graph.dir/graph_io.cpp.o" "gcc" "src/graph/CMakeFiles/dls_graph.dir/graph_io.cpp.o.d"
  "/root/repo/src/graph/minor_density.cpp" "src/graph/CMakeFiles/dls_graph.dir/minor_density.cpp.o" "gcc" "src/graph/CMakeFiles/dls_graph.dir/minor_density.cpp.o.d"
  "/root/repo/src/graph/tree_decomposition.cpp" "src/graph/CMakeFiles/dls_graph.dir/tree_decomposition.cpp.o" "gcc" "src/graph/CMakeFiles/dls_graph.dir/tree_decomposition.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
