file(REMOVE_RECURSE
  "libdls_graph.a"
)
