file(REMOVE_RECURSE
  "libdls_laplacian.a"
)
