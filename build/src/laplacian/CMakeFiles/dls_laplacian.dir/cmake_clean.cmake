file(REMOVE_RECURSE
  "CMakeFiles/dls_laplacian.dir/electrical.cpp.o"
  "CMakeFiles/dls_laplacian.dir/electrical.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/elimination.cpp.o"
  "CMakeFiles/dls_laplacian.dir/elimination.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/harmonic.cpp.o"
  "CMakeFiles/dls_laplacian.dir/harmonic.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/low_stretch_tree.cpp.o"
  "CMakeFiles/dls_laplacian.dir/low_stretch_tree.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/maxflow.cpp.o"
  "CMakeFiles/dls_laplacian.dir/maxflow.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/mincut.cpp.o"
  "CMakeFiles/dls_laplacian.dir/mincut.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/minor.cpp.o"
  "CMakeFiles/dls_laplacian.dir/minor.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/pa_oracle.cpp.o"
  "CMakeFiles/dls_laplacian.dir/pa_oracle.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/recursive_solver.cpp.o"
  "CMakeFiles/dls_laplacian.dir/recursive_solver.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/spanning_tree.cpp.o"
  "CMakeFiles/dls_laplacian.dir/spanning_tree.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/tree_solver.cpp.o"
  "CMakeFiles/dls_laplacian.dir/tree_solver.cpp.o.d"
  "CMakeFiles/dls_laplacian.dir/ultra_sparsifier.cpp.o"
  "CMakeFiles/dls_laplacian.dir/ultra_sparsifier.cpp.o.d"
  "libdls_laplacian.a"
  "libdls_laplacian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_laplacian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
