# Empty dependencies file for dls_laplacian.
# This may be replaced when dependencies are built.
