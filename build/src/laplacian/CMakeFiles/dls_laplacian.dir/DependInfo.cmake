
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/laplacian/electrical.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/electrical.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/electrical.cpp.o.d"
  "/root/repo/src/laplacian/elimination.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/elimination.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/elimination.cpp.o.d"
  "/root/repo/src/laplacian/harmonic.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/harmonic.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/harmonic.cpp.o.d"
  "/root/repo/src/laplacian/low_stretch_tree.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/low_stretch_tree.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/low_stretch_tree.cpp.o.d"
  "/root/repo/src/laplacian/maxflow.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/maxflow.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/maxflow.cpp.o.d"
  "/root/repo/src/laplacian/mincut.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/mincut.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/mincut.cpp.o.d"
  "/root/repo/src/laplacian/minor.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/minor.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/minor.cpp.o.d"
  "/root/repo/src/laplacian/pa_oracle.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/pa_oracle.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/pa_oracle.cpp.o.d"
  "/root/repo/src/laplacian/recursive_solver.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/recursive_solver.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/recursive_solver.cpp.o.d"
  "/root/repo/src/laplacian/spanning_tree.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/spanning_tree.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/spanning_tree.cpp.o.d"
  "/root/repo/src/laplacian/tree_solver.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/tree_solver.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/tree_solver.cpp.o.d"
  "/root/repo/src/laplacian/ultra_sparsifier.cpp" "src/laplacian/CMakeFiles/dls_laplacian.dir/ultra_sparsifier.cpp.o" "gcc" "src/laplacian/CMakeFiles/dls_laplacian.dir/ultra_sparsifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/congested_pa/CMakeFiles/dls_congested_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/shortcuts/CMakeFiles/dls_shortcuts.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dls_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
