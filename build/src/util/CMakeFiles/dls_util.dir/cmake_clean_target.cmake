file(REMOVE_RECURSE
  "libdls_util.a"
)
