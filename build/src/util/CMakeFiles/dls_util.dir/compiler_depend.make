# Empty compiler generated dependencies file for dls_util.
# This may be replaced when dependencies are built.
