file(REMOVE_RECURSE
  "CMakeFiles/dls_util.dir/flags.cpp.o"
  "CMakeFiles/dls_util.dir/flags.cpp.o.d"
  "CMakeFiles/dls_util.dir/logging.cpp.o"
  "CMakeFiles/dls_util.dir/logging.cpp.o.d"
  "CMakeFiles/dls_util.dir/random.cpp.o"
  "CMakeFiles/dls_util.dir/random.cpp.o.d"
  "CMakeFiles/dls_util.dir/stats.cpp.o"
  "CMakeFiles/dls_util.dir/stats.cpp.o.d"
  "CMakeFiles/dls_util.dir/table.cpp.o"
  "CMakeFiles/dls_util.dir/table.cpp.o.d"
  "libdls_util.a"
  "libdls_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
