# Empty compiler generated dependencies file for dls_congested_pa.
# This may be replaced when dependencies are built.
