file(REMOVE_RECURSE
  "libdls_congested_pa.a"
)
