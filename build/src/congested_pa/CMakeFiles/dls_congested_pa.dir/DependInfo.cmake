
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/congested_pa/edge_coloring.cpp" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/edge_coloring.cpp.o" "gcc" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/edge_coloring.cpp.o.d"
  "/root/repo/src/congested_pa/euler_paths.cpp" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/euler_paths.cpp.o" "gcc" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/euler_paths.cpp.o.d"
  "/root/repo/src/congested_pa/heavy_paths.cpp" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/heavy_paths.cpp.o" "gcc" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/heavy_paths.cpp.o.d"
  "/root/repo/src/congested_pa/layered_graph.cpp" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/layered_graph.cpp.o" "gcc" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/layered_graph.cpp.o.d"
  "/root/repo/src/congested_pa/path_restricted.cpp" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/path_restricted.cpp.o" "gcc" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/path_restricted.cpp.o.d"
  "/root/repo/src/congested_pa/solver.cpp" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/solver.cpp.o" "gcc" "src/congested_pa/CMakeFiles/dls_congested_pa.dir/solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/shortcuts/CMakeFiles/dls_shortcuts.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
