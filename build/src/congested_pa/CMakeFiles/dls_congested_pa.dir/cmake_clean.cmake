file(REMOVE_RECURSE
  "CMakeFiles/dls_congested_pa.dir/edge_coloring.cpp.o"
  "CMakeFiles/dls_congested_pa.dir/edge_coloring.cpp.o.d"
  "CMakeFiles/dls_congested_pa.dir/euler_paths.cpp.o"
  "CMakeFiles/dls_congested_pa.dir/euler_paths.cpp.o.d"
  "CMakeFiles/dls_congested_pa.dir/heavy_paths.cpp.o"
  "CMakeFiles/dls_congested_pa.dir/heavy_paths.cpp.o.d"
  "CMakeFiles/dls_congested_pa.dir/layered_graph.cpp.o"
  "CMakeFiles/dls_congested_pa.dir/layered_graph.cpp.o.d"
  "CMakeFiles/dls_congested_pa.dir/path_restricted.cpp.o"
  "CMakeFiles/dls_congested_pa.dir/path_restricted.cpp.o.d"
  "CMakeFiles/dls_congested_pa.dir/solver.cpp.o"
  "CMakeFiles/dls_congested_pa.dir/solver.cpp.o.d"
  "libdls_congested_pa.a"
  "libdls_congested_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_congested_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
