file(REMOVE_RECURSE
  "libdls_linalg.a"
)
