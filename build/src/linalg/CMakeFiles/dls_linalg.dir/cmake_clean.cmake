file(REMOVE_RECURSE
  "CMakeFiles/dls_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/dls_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/dls_linalg.dir/laplacian.cpp.o"
  "CMakeFiles/dls_linalg.dir/laplacian.cpp.o.d"
  "CMakeFiles/dls_linalg.dir/solvers.cpp.o"
  "CMakeFiles/dls_linalg.dir/solvers.cpp.o.d"
  "CMakeFiles/dls_linalg.dir/vector_ops.cpp.o"
  "CMakeFiles/dls_linalg.dir/vector_ops.cpp.o.d"
  "libdls_linalg.a"
  "libdls_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
