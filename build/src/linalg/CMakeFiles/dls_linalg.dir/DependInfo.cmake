
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cpp" "src/linalg/CMakeFiles/dls_linalg.dir/cholesky.cpp.o" "gcc" "src/linalg/CMakeFiles/dls_linalg.dir/cholesky.cpp.o.d"
  "/root/repo/src/linalg/laplacian.cpp" "src/linalg/CMakeFiles/dls_linalg.dir/laplacian.cpp.o" "gcc" "src/linalg/CMakeFiles/dls_linalg.dir/laplacian.cpp.o.d"
  "/root/repo/src/linalg/solvers.cpp" "src/linalg/CMakeFiles/dls_linalg.dir/solvers.cpp.o" "gcc" "src/linalg/CMakeFiles/dls_linalg.dir/solvers.cpp.o.d"
  "/root/repo/src/linalg/vector_ops.cpp" "src/linalg/CMakeFiles/dls_linalg.dir/vector_ops.cpp.o" "gcc" "src/linalg/CMakeFiles/dls_linalg.dir/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
