# Empty dependencies file for dls_linalg.
# This may be replaced when dependencies are built.
