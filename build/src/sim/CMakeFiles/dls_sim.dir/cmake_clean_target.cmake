file(REMOVE_RECURSE
  "libdls_sim.a"
)
