
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/aggregation_scheduler.cpp" "src/sim/CMakeFiles/dls_sim.dir/aggregation_scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/dls_sim.dir/aggregation_scheduler.cpp.o.d"
  "/root/repo/src/sim/hybrid.cpp" "src/sim/CMakeFiles/dls_sim.dir/hybrid.cpp.o" "gcc" "src/sim/CMakeFiles/dls_sim.dir/hybrid.cpp.o.d"
  "/root/repo/src/sim/ncc.cpp" "src/sim/CMakeFiles/dls_sim.dir/ncc.cpp.o" "gcc" "src/sim/CMakeFiles/dls_sim.dir/ncc.cpp.o.d"
  "/root/repo/src/sim/protocols.cpp" "src/sim/CMakeFiles/dls_sim.dir/protocols.cpp.o" "gcc" "src/sim/CMakeFiles/dls_sim.dir/protocols.cpp.o.d"
  "/root/repo/src/sim/round_ledger.cpp" "src/sim/CMakeFiles/dls_sim.dir/round_ledger.cpp.o" "gcc" "src/sim/CMakeFiles/dls_sim.dir/round_ledger.cpp.o.d"
  "/root/repo/src/sim/sync_network.cpp" "src/sim/CMakeFiles/dls_sim.dir/sync_network.cpp.o" "gcc" "src/sim/CMakeFiles/dls_sim.dir/sync_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/dls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
