file(REMOVE_RECURSE
  "CMakeFiles/dls_sim.dir/aggregation_scheduler.cpp.o"
  "CMakeFiles/dls_sim.dir/aggregation_scheduler.cpp.o.d"
  "CMakeFiles/dls_sim.dir/hybrid.cpp.o"
  "CMakeFiles/dls_sim.dir/hybrid.cpp.o.d"
  "CMakeFiles/dls_sim.dir/ncc.cpp.o"
  "CMakeFiles/dls_sim.dir/ncc.cpp.o.d"
  "CMakeFiles/dls_sim.dir/protocols.cpp.o"
  "CMakeFiles/dls_sim.dir/protocols.cpp.o.d"
  "CMakeFiles/dls_sim.dir/round_ledger.cpp.o"
  "CMakeFiles/dls_sim.dir/round_ledger.cpp.o.d"
  "CMakeFiles/dls_sim.dir/sync_network.cpp.o"
  "CMakeFiles/dls_sim.dir/sync_network.cpp.o.d"
  "libdls_sim.a"
  "libdls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
