# Empty dependencies file for dls_sim.
# This may be replaced when dependencies are built.
