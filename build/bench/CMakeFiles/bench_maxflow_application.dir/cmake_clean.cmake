file(REMOVE_RECURSE
  "CMakeFiles/bench_maxflow_application.dir/bench_maxflow_application.cpp.o"
  "CMakeFiles/bench_maxflow_application.dir/bench_maxflow_application.cpp.o.d"
  "bench_maxflow_application"
  "bench_maxflow_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_maxflow_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
