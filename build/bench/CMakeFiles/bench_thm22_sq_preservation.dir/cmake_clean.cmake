file(REMOVE_RECURSE
  "CMakeFiles/bench_thm22_sq_preservation.dir/bench_thm22_sq_preservation.cpp.o"
  "CMakeFiles/bench_thm22_sq_preservation.dir/bench_thm22_sq_preservation.cpp.o.d"
  "bench_thm22_sq_preservation"
  "bench_thm22_sq_preservation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm22_sq_preservation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
