# Empty dependencies file for bench_thm22_sq_preservation.
# This may be replaced when dependencies are built.
