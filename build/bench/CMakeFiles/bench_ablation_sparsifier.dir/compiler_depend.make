# Empty compiler generated dependencies file for bench_ablation_sparsifier.
# This may be replaced when dependencies are built.
