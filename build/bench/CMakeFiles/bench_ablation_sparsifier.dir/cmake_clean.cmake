file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sparsifier.dir/bench_ablation_sparsifier.cpp.o"
  "CMakeFiles/bench_ablation_sparsifier.dir/bench_ablation_sparsifier.cpp.o.d"
  "bench_ablation_sparsifier"
  "bench_ablation_sparsifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sparsifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
