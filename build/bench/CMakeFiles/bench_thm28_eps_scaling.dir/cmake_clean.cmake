file(REMOVE_RECURSE
  "CMakeFiles/bench_thm28_eps_scaling.dir/bench_thm28_eps_scaling.cpp.o"
  "CMakeFiles/bench_thm28_eps_scaling.dir/bench_thm28_eps_scaling.cpp.o.d"
  "bench_thm28_eps_scaling"
  "bench_thm28_eps_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm28_eps_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
