# Empty compiler generated dependencies file for bench_thm28_eps_scaling.
# This may be replaced when dependencies are built.
