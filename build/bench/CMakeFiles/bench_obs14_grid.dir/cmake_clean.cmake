file(REMOVE_RECURSE
  "CMakeFiles/bench_obs14_grid.dir/bench_obs14_grid.cpp.o"
  "CMakeFiles/bench_obs14_grid.dir/bench_obs14_grid.cpp.o.d"
  "bench_obs14_grid"
  "bench_obs14_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs14_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
