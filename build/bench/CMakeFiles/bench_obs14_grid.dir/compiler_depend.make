# Empty compiler generated dependencies file for bench_obs14_grid.
# This may be replaced when dependencies are built.
