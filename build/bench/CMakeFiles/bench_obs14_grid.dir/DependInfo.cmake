
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_obs14_grid.cpp" "bench/CMakeFiles/bench_obs14_grid.dir/bench_obs14_grid.cpp.o" "gcc" "bench/CMakeFiles/bench_obs14_grid.dir/bench_obs14_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lowerbound/CMakeFiles/dls_lowerbound.dir/DependInfo.cmake"
  "/root/repo/build/src/laplacian/CMakeFiles/dls_laplacian.dir/DependInfo.cmake"
  "/root/repo/build/src/congested_pa/CMakeFiles/dls_congested_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/shortcuts/CMakeFiles/dls_shortcuts.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/dls_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/dls_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
