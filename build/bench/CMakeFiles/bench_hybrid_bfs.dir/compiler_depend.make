# Empty compiler generated dependencies file for bench_hybrid_bfs.
# This may be replaced when dependencies are built.
