# Empty dependencies file for bench_ablation_lsst.
# This may be replaced when dependencies are built.
