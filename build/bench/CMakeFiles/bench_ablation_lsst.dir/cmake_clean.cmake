file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lsst.dir/bench_ablation_lsst.cpp.o"
  "CMakeFiles/bench_ablation_lsst.dir/bench_ablation_lsst.cpp.o.d"
  "bench_ablation_lsst"
  "bench_ablation_lsst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lsst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
