file(REMOVE_RECURSE
  "CMakeFiles/bench_obs21_minor_density.dir/bench_obs21_minor_density.cpp.o"
  "CMakeFiles/bench_obs21_minor_density.dir/bench_obs21_minor_density.cpp.o.d"
  "bench_obs21_minor_density"
  "bench_obs21_minor_density.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs21_minor_density.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
