# Empty compiler generated dependencies file for bench_obs21_minor_density.
# This may be replaced when dependencies are built.
