file(REMOVE_RECURSE
  "CMakeFiles/bench_thm3_hybrid.dir/bench_thm3_hybrid.cpp.o"
  "CMakeFiles/bench_thm3_hybrid.dir/bench_thm3_hybrid.cpp.o.d"
  "bench_thm3_hybrid"
  "bench_thm3_hybrid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm3_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
