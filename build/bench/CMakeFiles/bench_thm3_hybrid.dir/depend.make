# Empty dependencies file for bench_thm3_hybrid.
# This may be replaced when dependencies are built.
