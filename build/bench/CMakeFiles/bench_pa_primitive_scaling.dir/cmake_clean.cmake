file(REMOVE_RECURSE
  "CMakeFiles/bench_pa_primitive_scaling.dir/bench_pa_primitive_scaling.cpp.o"
  "CMakeFiles/bench_pa_primitive_scaling.dir/bench_pa_primitive_scaling.cpp.o.d"
  "bench_pa_primitive_scaling"
  "bench_pa_primitive_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pa_primitive_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
