# Empty compiler generated dependencies file for bench_pa_primitive_scaling.
# This may be replaced when dependencies are built.
