# Empty dependencies file for bench_thm2_solver_rounds.
# This may be replaced when dependencies are built.
