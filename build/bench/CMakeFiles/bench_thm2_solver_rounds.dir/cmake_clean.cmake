file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_solver_rounds.dir/bench_thm2_solver_rounds.cpp.o"
  "CMakeFiles/bench_thm2_solver_rounds.dir/bench_thm2_solver_rounds.cpp.o.d"
  "bench_thm2_solver_rounds"
  "bench_thm2_solver_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_solver_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
