# Empty compiler generated dependencies file for bench_thm25_any_to_any.
# This may be replaced when dependencies are built.
