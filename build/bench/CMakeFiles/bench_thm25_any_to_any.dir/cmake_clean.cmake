file(REMOVE_RECURSE
  "CMakeFiles/bench_thm25_any_to_any.dir/bench_thm25_any_to_any.cpp.o"
  "CMakeFiles/bench_thm25_any_to_any.dir/bench_thm25_any_to_any.cpp.o.d"
  "bench_thm25_any_to_any"
  "bench_thm25_any_to_any.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm25_any_to_any.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
