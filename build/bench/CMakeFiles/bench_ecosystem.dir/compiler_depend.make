# Empty compiler generated dependencies file for bench_ecosystem.
# This may be replaced when dependencies are built.
