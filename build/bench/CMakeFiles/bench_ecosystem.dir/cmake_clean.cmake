file(REMOVE_RECURSE
  "CMakeFiles/bench_ecosystem.dir/bench_ecosystem.cpp.o"
  "CMakeFiles/bench_ecosystem.dir/bench_ecosystem.cpp.o.d"
  "bench_ecosystem"
  "bench_ecosystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ecosystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
