file(REMOVE_RECURSE
  "CMakeFiles/bench_cor23_general_scaling.dir/bench_cor23_general_scaling.cpp.o"
  "CMakeFiles/bench_cor23_general_scaling.dir/bench_cor23_general_scaling.cpp.o.d"
  "bench_cor23_general_scaling"
  "bench_cor23_general_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cor23_general_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
