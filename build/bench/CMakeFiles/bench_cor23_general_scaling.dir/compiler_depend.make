# Empty compiler generated dependencies file for bench_cor23_general_scaling.
# This may be replaced when dependencies are built.
