# Empty dependencies file for bench_ablation_outer.
# This may be replaced when dependencies are built.
