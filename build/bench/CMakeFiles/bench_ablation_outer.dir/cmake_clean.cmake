file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_outer.dir/bench_ablation_outer.cpp.o"
  "CMakeFiles/bench_ablation_outer.dir/bench_ablation_outer.cpp.o.d"
  "bench_ablation_outer"
  "bench_ablation_outer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_outer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
