# Empty dependencies file for bench_lemma19_treewidth.
# This may be replaced when dependencies are built.
