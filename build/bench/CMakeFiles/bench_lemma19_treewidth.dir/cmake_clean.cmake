file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma19_treewidth.dir/bench_lemma19_treewidth.cpp.o"
  "CMakeFiles/bench_lemma19_treewidth.dir/bench_lemma19_treewidth.cpp.o.d"
  "bench_lemma19_treewidth"
  "bench_lemma19_treewidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma19_treewidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
