# Empty dependencies file for bench_cor20_tw_scaling.
# This may be replaced when dependencies are built.
