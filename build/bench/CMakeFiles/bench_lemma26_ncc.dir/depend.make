# Empty dependencies file for bench_lemma26_ncc.
# This may be replaced when dependencies are built.
