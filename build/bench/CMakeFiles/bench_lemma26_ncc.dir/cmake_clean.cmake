file(REMOVE_RECURSE
  "CMakeFiles/bench_lemma26_ncc.dir/bench_lemma26_ncc.cpp.o"
  "CMakeFiles/bench_lemma26_ncc.dir/bench_lemma26_ncc.cpp.o.d"
  "bench_lemma26_ncc"
  "bench_lemma26_ncc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma26_ncc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
