#!/usr/bin/env python3
"""Diff two bench JSON metric files (the --json output of bench binaries).

Usage:
    bench_compare.py BASELINE.json CANDIDATE.json [--check]
        [--threshold 0.15] [--check-pattern REGEX]

Prints every metric present in either file with its relative delta. With
--check, exits non-zero when a *wall-clock* metric whose key matches
--check-pattern (default: the single-RHS rows, ``/b1/t[0-9]+/wall``)
regressed by more than --threshold (default 15%): batching must never tax
the plain one-RHS solve. Deterministic metrics (``rounds_*``) are also
gated under --check — they are simulated round counts, so any drift at all
between two runs of the same code is a determinism regression and fails
exactly, with no threshold.

Wall-clock comparisons are only meaningful between runs on the same
machine; rounds comparisons are meaningful anywhere.
"""

import argparse
import json
import re
import sys


def load(path):
    """Loads one bench metrics file, exiting with a one-line diagnosis (never
    a traceback) when the baseline is missing or malformed — the common CI
    failure mode is a stale or absent baseline artifact."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        sys.exit(f"bench_compare: {path}: no such file "
                 "(generate it with `<bench> --json {path}`)")
    except IsADirectoryError:
        sys.exit(f"bench_compare: {path}: is a directory, expected a bench "
                 "metrics JSON file")
    except json.JSONDecodeError as e:
        sys.exit(f"bench_compare: {path}: not valid JSON ({e.msg} at "
                 f"line {e.lineno} column {e.colno})")
    if not isinstance(doc, dict) or "metrics" not in doc \
            or not isinstance(doc["metrics"], dict):
        sys.exit(f"bench_compare: {path}: not a bench metrics file "
                 "(missing 'metrics' object)")
    return doc


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on single-RHS wall regression or any rounds drift",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="max tolerated relative wall-clock regression (default 0.15)",
    )
    parser.add_argument(
        "--check-pattern",
        default=r"/b1/t[0-9]+/wall",
        help="regex selecting the wall metrics gated by --check",
    )
    args = parser.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    a, b = base["metrics"], cand["metrics"]
    keys = sorted(set(a) | set(b))

    wall_gate = re.compile(args.check_pattern)
    failures = []
    width = max((len(k) for k in keys), default=10)
    print(f"{'metric':<{width}}  {'baseline':>14}  {'candidate':>14}  {'delta':>8}")
    for key in keys:
        if key not in a or key not in b:
            side = "baseline" if key in a else "candidate"
            print(f"{key:<{width}}  {'only in ' + side:>40}")
            continue
        va, vb = a[key], b[key]
        delta = (vb - va) / va if va != 0 else float("inf") if vb != 0 else 0.0
        print(f"{key:<{width}}  {va:>14.6g}  {vb:>14.6g}  {delta:>+7.1%}")
        if "/rounds_" in key or key.startswith("rounds_"):
            if va != vb:
                failures.append(f"{key}: rounds drifted {va:g} -> {vb:g} "
                                "(simulated rounds must diff exactly)")
        elif wall_gate.search(key) and delta > args.threshold:
            failures.append(f"{key}: wall regression {delta:+.1%} "
                            f"exceeds {args.threshold:.0%}")

    if args.check and failures:
        print(f"\nbench_compare: {len(failures)} check failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if args.check:
        print("\nbench_compare: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
