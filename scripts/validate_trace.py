#!/usr/bin/env python3
"""Schema validation for Chrome trace-event JSON emitted by the tracer
(src/obs/trace_export.cpp): the CI gate behind uploaded .trace.json
artifacts.

Checks, per file:
  * the file parses as JSON with a ``traceEvents`` array,
  * every event carries name/ph/pid/tid/ts,
  * duration events are well-nested: within each (pid, tid) lane the B/E
    pairs balance like parentheses, matching names LIFO, and timestamps
    never decrease,
  * no lane is left with an unclosed B at end of stream.

Usage: validate_trace.py TRACE.json [TRACE2.json ...]
Exits non-zero with one line per defect.
"""

import json
import sys


def validate(path):
    errors = []
    try:
        with open(path) as f:
            doc = json.load(f)
    except FileNotFoundError:
        return [f"{path}: no such file"]
    except json.JSONDecodeError as e:
        return [f"{path}: not valid JSON ({e.msg} at line {e.lineno})"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: missing 'traceEvents' array"]

    stacks = {}  # (pid, tid) -> [(name, ts), ...]
    last_ts = {}
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"{path}: event {i} is not an object")
            continue
        phase = event.get("ph")
        if phase == "M":  # metadata: names lanes, no timestamp semantics
            if "name" not in event or "pid" not in event:
                errors.append(f"{path}: metadata event {i} missing name/pid")
            continue
        missing = [k for k in ("name", "ph", "pid", "tid") if k not in event]
        if missing:
            errors.append(f"{path}: event {i} missing {missing}")
            continue
        if "ts" not in event:
            errors.append(f"{path}: event {i} ({event['name']}) missing ts")
            continue
        lane = (event["pid"], event["tid"])
        ts = event["ts"]
        if ts < last_ts.get(lane, 0):
            errors.append(f"{path}: event {i} ({event['name']}) goes back in "
                          f"time on lane {lane}: {ts} < {last_ts[lane]}")
        last_ts[lane] = ts
        if phase == "B":
            stacks.setdefault(lane, []).append((event["name"], ts))
        elif phase == "E":
            stack = stacks.setdefault(lane, [])
            if not stack:
                errors.append(f"{path}: event {i} E '{event['name']}' on lane "
                              f"{lane} without a matching B")
                continue
            name, begin_ts = stack.pop()
            if name != event["name"]:
                errors.append(f"{path}: event {i} E '{event['name']}' closes "
                              f"'{name}' (B/E must nest LIFO)")
            if ts < begin_ts:
                errors.append(f"{path}: event {i} '{event['name']}' ends "
                              f"before it begins ({ts} < {begin_ts})")
        elif phase not in ("I", "X", "C"):
            errors.append(f"{path}: event {i} has unknown phase '{phase}'")
    for lane, stack in stacks.items():
        for name, _ in stack:
            errors.append(f"{path}: unclosed B '{name}' on lane {lane}")
    if not errors:
        n_events = sum(1 for e in events
                       if isinstance(e, dict) and e.get("ph") in ("B", "E"))
        print(f"{path}: ok ({n_events} span events, "
              f"{len(last_ts)} timeline(s))")
    return errors


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    failures = []
    for path in sys.argv[1:]:
        failures.extend(validate(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
