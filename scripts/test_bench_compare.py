#!/usr/bin/env python3
"""Unit tests for bench_compare.py's failure modes and check gates.

Run directly (`python3 scripts/test_bench_compare.py`) or via unittest/pytest
discovery; CI runs them next to the C++ suites so a refactor of the compare
script cannot silently turn its diagnostics back into tracebacks.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def run_compare(*args):
    return subprocess.run(
        [sys.executable, SCRIPT, *args], capture_output=True, text=True)


def write_metrics(directory, name, metrics, bench="test"):
    path = os.path.join(directory, name)
    with open(path, "w") as f:
        json.dump({"bench": bench, "metrics": metrics}, f)
    return path


class BenchCompareDiagnostics(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.good = write_metrics(self.dir.name, "good.json",
                                  {"grid/b1/t1/wall": 1.0,
                                   "grid/rounds_total": 812.0})

    def tearDown(self):
        self.dir.cleanup()

    def assert_clean_failure(self, result, needle):
        """Non-zero exit, a one-line message containing `needle`, NO
        traceback."""
        self.assertNotEqual(result.returncode, 0)
        combined = result.stdout + result.stderr
        self.assertIn(needle, combined)
        self.assertNotIn("Traceback", combined)

    def test_missing_baseline_fails_cleanly(self):
        missing = os.path.join(self.dir.name, "nope.json")
        result = run_compare(missing, self.good, "--check")
        self.assert_clean_failure(result, "no such file")
        self.assertIn("nope.json", result.stdout + result.stderr)

    def test_malformed_json_fails_cleanly(self):
        bad = os.path.join(self.dir.name, "bad.json")
        with open(bad, "w") as f:
            f.write("{ not json ]")
        result = run_compare(bad, self.good, "--check")
        self.assert_clean_failure(result, "not valid JSON")

    def test_wrong_schema_fails_cleanly(self):
        bad = write_metrics(self.dir.name, "schema.json", {})
        with open(bad, "w") as f:
            json.dump({"bench": "x"}, f)  # no "metrics" object
        result = run_compare(bad, self.good, "--check")
        self.assert_clean_failure(result, "missing 'metrics' object")

    def test_directory_argument_fails_cleanly(self):
        result = run_compare(self.dir.name, self.good, "--check")
        self.assert_clean_failure(result, "is a directory")

    def test_self_compare_passes(self):
        result = run_compare(self.good, self.good, "--check")
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertIn("all checks passed", result.stdout)

    def test_rounds_drift_fails_exactly(self):
        drifted = write_metrics(self.dir.name, "drift.json",
                                {"grid/b1/t1/wall": 1.0,
                                 "grid/rounds_total": 813.0})
        result = run_compare(self.good, drifted, "--check")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("rounds drifted", result.stderr)

    def test_wall_regression_gated_by_threshold(self):
        slower = write_metrics(self.dir.name, "slow.json",
                               {"grid/b1/t1/wall": 1.3,
                                "grid/rounds_total": 812.0})
        result = run_compare(self.good, slower, "--check")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("wall regression", result.stderr)
        relaxed = run_compare(self.good, slower, "--check",
                              "--threshold", "0.5")
        self.assertEqual(relaxed.returncode, 0, relaxed.stderr)


if __name__ == "__main__":
    unittest.main()
