#!/usr/bin/env bash
# Rebuild everything, run the full test suite and every experiment, and
# record the outputs EXPERIMENTS.md refers to. Run from the repository root.
set -euo pipefail

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build -j"$(nproc)" 2>&1 | tee test_output.txt
for b in build/bench/*; do
  if [ -f "$b" ] && [ -x "$b" ]; then "$b"; fi
done 2>&1 | tee bench_output.txt
echo "Done: test_output.txt, bench_output.txt"
