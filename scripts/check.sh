#!/usr/bin/env bash
# Tier-1 gate: build and run the full test suite, normally and under
# ASan+UBSan (via the asan-ubsan preset in CMakePresets.json). Run from the
# repository root; pass --sanitize-only to skip the plain build.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

if [[ "${1:-}" != "--sanitize-only" ]]; then
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  ctest --preset default -j "$jobs"
fi

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

echo "check.sh: all suites passed"
