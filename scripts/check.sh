#!/usr/bin/env bash
# Tier-1 gate: build and run the full test suite, normally and under
# ASan+UBSan (via the asan-ubsan preset in CMakePresets.json), then the
# concurrency suites (ThreadPool / SimBatch) under ThreadSanitizer. Run from
# the repository root; pass --sanitize-only to skip the plain build, or
# --no-tsan to skip the TSan stage (e.g. on toolchains without libtsan).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
run_plain=1
run_tsan=1
for arg in "$@"; do
  case "$arg" in
    --sanitize-only) run_plain=0 ;;
    --no-tsan) run_tsan=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

if [[ "$run_plain" == 1 ]]; then
  cmake --preset default
  cmake --build --preset default -j "$jobs"
  ctest --preset default -j "$jobs"
fi

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
ctest --preset asan-ubsan -j "$jobs"

if [[ "$run_tsan" == 1 ]]; then
  # Only the binaries holding the ThreadPool / SimBatch / SolveBatch /
  # BlockedKernels / SolverCache / Metamorphic suites: TSan's runtime
  # overhead on the full suite buys nothing — every other test is
  # single-threaded — and the ctest preset filters to those suites anyway.
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs" \
    --target test_util test_sim_sync test_solve_session test_linalg \
    test_solver_cache test_metamorphic
  ctest --preset tsan -j "$jobs"
fi

echo "check.sh: all suites passed"
