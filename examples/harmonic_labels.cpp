// Semi-supervised label propagation via harmonic interpolation: a few nodes
// carry known labels (±1); every other node receives the harmonic extension
// — the energy-minimizing soft label. A classic Laplacian-paradigm workload
// (heat equilibrium / Dirichlet problem) running on the distributed solver.
//
//   ./harmonic_labels [--n 96] [--labels 6] [--seed 13]
#include <iostream>

#include "graph/generators.hpp"
#include "laplacian/harmonic.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 96));
  const std::size_t labels = static_cast<std::size_t>(flags.get_int("labels", 6));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 13)));

  // A social-network-like topology (preferential attachment).
  const Graph g = make_preferential_attachment(n, 3, rng);
  std::cout << "network: " << g.describe() << "\n";

  HarmonicProblem problem;
  const auto perm = rng.permutation(n);
  for (std::size_t i = 0; i < labels; ++i) {
    problem.boundary_nodes.push_back(static_cast<NodeId>(perm[i]));
    problem.boundary_values.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  std::cout << "labeled nodes: " << labels << " (alternating +1 / -1)\n\n";

  const HarmonicResult result = solve_harmonic(g, problem, rng);
  std::cout << "max boundary error:       " << result.max_boundary_error << "\n"
            << "max harmonic violation:   " << result.max_harmonic_violation
            << "\n"
            << "PA oracle calls:          " << result.pa_calls << "\n"
            << "CONGEST rounds:           " << result.local_rounds << "\n\n";

  // Label histogram of the soft assignment.
  Table table({"soft label bucket", "nodes"});
  std::vector<std::size_t> buckets(5, 0);
  for (double v : result.x) {
    const int b = std::clamp(static_cast<int>((v + 1.0) / 0.4), 0, 4);
    ++buckets[static_cast<std::size_t>(b)];
  }
  const char* names[] = {"[-1.0,-0.6)", "[-0.6,-0.2)", "[-0.2,+0.2)",
                         "[+0.2,+0.6)", "[+0.6,+1.0]"};
  for (std::size_t b = 0; b < 5; ++b) {
    table.add_row({names[b], Table::cell(buckets[b])});
  }
  table.print(std::cout);
  return result.max_boundary_error < 1e-2 ? 0 : 1;
}
