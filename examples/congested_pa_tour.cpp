// A guided tour of the paper's core pipeline on its own flagship instance:
// the 2-congested diagonal-stripe problem of Observation 14 / Figure 1.
// Prints each stage — the overlap structure, the heavy-path decomposition,
// the occurrence-multigraph colouring, the layered lift, and the final
// aggregation — with its measured cost.
//
//   ./congested_pa_tour [--side 8] [--seed 3]
#include <iostream>
#include <set>

#include "congested_pa/heavy_paths.hpp"
#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  const std::size_t side = static_cast<std::size_t>(flags.get_int("side", 8));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 3)));

  const Graph g = make_grid(side, side);
  const PartCollection pc = figure1_diagonal_instance(side);
  std::cout << "Stage 0 — the instance (Observation 14 / Figure 1)\n"
            << "  network: " << g.describe() << "\n"
            << "  parts:   " << pc.num_parts()
            << " diagonal stripes, congestion rho = " << congestion(g, pc)
            << "\n";
  {
    std::vector<std::vector<std::uint32_t>> parts_of(g.num_nodes());
    for (std::uint32_t i = 0; i < pc.num_parts(); ++i) {
      for (NodeId v : pc.parts[i]) parts_of[v].push_back(i);
    }
    std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
    for (const auto& list : parts_of) {
      for (std::size_t a = 0; a < list.size(); ++a) {
        for (std::size_t b = a + 1; b < list.size(); ++b) {
          pairs.insert({list[a], list[b]});
        }
      }
    }
    std::cout << "  " << pairs.size()
              << " part pairs share a node -> no reduction to few "
                 "1-congested instances exists\n\n";
  }

  std::cout << "Stage 1 — heavy-path decomposition (our Lemma 15 realization)\n";
  {
    std::uint32_t max_depth = 0;
    std::size_t total_paths = 0;
    for (const auto& part : pc.parts) {
      const HeavyPathDecomposition hpd = heavy_path_decomposition(g, part);
      max_depth = std::max(max_depth, hpd.max_depth);
      total_paths += hpd.paths.size();
    }
    std::cout << "  " << total_paths << " heavy paths across all parts, "
              << (max_depth + 1)
              << " depth level(s) -> that many path-restricted sweeps up "
                 "and down\n\n";
  }

  std::cout << "Stage 2+3 — colour occurrences (Lemma 17), lift into the "
               "layered graph (Lemma 18), aggregate (Prop. 6), charge "
               "simulation (Lemma 16)\n";
  std::vector<std::vector<double>> values(pc.num_parts());
  std::vector<double> expected(pc.num_parts(), 0.0);
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    for (std::size_t j = 0; j < pc.parts[i].size(); ++j) {
      const double v = rng.next_double();
      values[i].push_back(v);
      expected[i] += v;
    }
  }
  const CongestedPaOutcome outcome =
      solve_congested_pa(g, pc, values, AggregationMonoid::sum(), rng);
  std::cout << "  layers used (= colours): " << outcome.max_layers
            << ", phases: " << outcome.phases
            << ", total charged rounds: " << outcome.total_rounds << "\n\n";

  std::cout << "Ledger breakdown:\n";
  Table ledger({"phase", "local rounds"});
  for (const LedgerEntry& e : outcome.ledger.entries()) {
    ledger.add_row({e.label, Table::cell(e.local_rounds)});
  }
  ledger.print(std::cout);

  double worst = 0.0;
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    worst = std::max(worst, std::abs(outcome.results[i] - expected[i]));
  }
  std::cout << "\nworst aggregation error vs sequential fold: " << worst << "\n";
  return worst < 1e-9 ? 0 : 1;
}
