// Network diagnostics: decide whether a failure-degraded overlay still spans
// the network — the spanning-connected-subgraph problem that underlies the
// paper's Ω̃(SQ(G)) lower bound (Theorem 1) — using the Laplacian solver as
// the decision procedure.
//
//   ./network_diagnostics [--side 8] [--failures 6] [--trials 4] [--seed 11]
#include <iostream>

#include "graph/generators.hpp"
#include "lowerbound/spanning_connected_subgraph.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  const std::size_t side = static_cast<std::size_t>(flags.get_int("side", 8));
  const std::size_t failures =
      static_cast<std::size_t>(flags.get_int("failures", 6));
  const int trials = static_cast<int>(flags.get_int("trials", 4));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 11)));

  const Graph g = make_grid(side, side);
  std::cout << "network: " << g.describe() << "\n"
            << "overlay: spanning tree with up to " << failures
            << " failed links plus 3 redundant links\n\n";

  Table table({"trial", "truth", "solver-decision", "probe residual",
               "CONGEST rounds", "PA calls"});
  int agreements = 0;
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t drop = (trial % 2 == 0) ? 0 : failures;
    const auto overlay = random_scs_instance(g, rng, drop, 3);
    const bool truth = is_spanning_connected(g, overlay);
    const ScsDecision decision = decide_spanning_connected_via_laplacian(
        g, overlay, OracleKind::kShortcut, rng, 5);
    agreements += (truth == decision.connected);
    table.add_row({Table::cell(static_cast<long long>(trial)),
                   truth ? "connected" : "broken",
                   decision.connected ? "connected" : "broken",
                   Table::cell(decision.residual, 5),
                   Table::cell(decision.local_rounds),
                   Table::cell(decision.pa_calls)});
  }
  table.print(std::cout);
  std::cout << "\nagreement with ground truth: " << agreements << "/" << trials
            << "\n";
  return agreements == trials ? 0 : 1;
}
