// Distributed MST via Boruvka over the part-wise aggregation oracle — the
// canonical low-congestion-shortcut application [20], and the first stage of
// the Laplacian solver's preconditioner construction.
//
//   ./mst_demo [--rows 12] [--cols 12] [--seed 9]
#include <iostream>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "laplacian/spanning_tree.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  const std::size_t rows = static_cast<std::size_t>(flags.get_int("rows", 12));
  const std::size_t cols = static_cast<std::size_t>(flags.get_int("cols", 12));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 9)));

  const Graph g = make_weighted_grid(rows, cols, rng, 1.0, 100.0);
  std::cout << "network: " << g.describe() << "\n";

  ShortcutPaOracle oracle(g, rng);
  const DistributedMstResult result = distributed_mst(oracle, rng);

  double distributed_weight = 0;
  for (EdgeId e : result.tree_edges) distributed_weight += g.edge(e).weight;
  double reference_weight = 0;
  for (EdgeId e : mst_kruskal(g)) reference_weight += g.edge(e).weight;

  std::cout << "Boruvka phases:     " << result.phases << "\n"
            << "PA oracle calls:    " << result.pa_calls << "\n"
            << "CONGEST rounds:     " << oracle.ledger().total_local() << "\n"
            << "MST weight:         " << distributed_weight << "\n"
            << "Kruskal reference:  " << reference_weight << "\n"
            << "valid spanning tree: "
            << (is_spanning_tree(g, result.tree_edges) ? "yes" : "no") << "\n";
  return std::abs(distributed_weight - reference_weight) < 1e-6 ? 0 : 1;
}
