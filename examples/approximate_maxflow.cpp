// Approximate undirected max flow via electrical flows — the application
// highlighted in the paper's conclusion (§5). Each MWU iteration is one
// distributed Laplacian solve; rounds are charged through the chosen model.
//
//   ./approximate_maxflow [--rows 8] [--cols 8] [--iters 16] [--seed 21]
#include <iostream>

#include "graph/generators.hpp"
#include "laplacian/maxflow.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  const std::size_t rows = static_cast<std::size_t>(flags.get_int("rows", 8));
  const std::size_t cols = static_cast<std::size_t>(flags.get_int("cols", 8));
  const int iters = static_cast<int>(flags.get_int("iters", 16));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 21)));

  const Graph g = make_weighted_grid(rows, cols, rng, 1.0, 6.0);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(g.num_nodes() - 1);
  std::cout << "capacitated network: " << g.describe() << "\n"
            << "MWU iterations: " << iters << "\n\n";

  ElectricalMaxFlowOptions options;
  options.iterations = iters;
  const ElectricalMaxFlowResult result =
      approx_max_flow_electrical(g, s, t, rng, MaxFlowModel::kShortcut, options);

  std::cout << "exact max flow (Edmonds-Karp): " << result.exact_value << "\n"
            << "electrical-flow value:         " << result.flow_value << "\n"
            << "approximation ratio:           " << result.approximation << "\n"
            << "conservation error:            "
            << flow_conservation_error(g, result.edge_flow, s, t,
                                       result.flow_value)
            << "\n"
            << "PA oracle calls:               " << result.pa_calls << "\n"
            << "CONGEST rounds:                " << result.local_rounds << "\n";
  return result.approximation > 0.5 ? 0 : 1;
}
