// Quickstart: solve a Laplacian system on a 16×16 grid network with the
// shortcut-based distributed solver (Theorem 2) and print what it cost.
//
//   ./quickstart [--rows 16] [--cols 16] [--eps 1e-8] [--seed 7]
#include <iostream>

#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "linalg/solvers.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  const std::size_t rows = static_cast<std::size_t>(flags.get_int("rows", 16));
  const std::size_t cols = static_cast<std::size_t>(flags.get_int("cols", 16));
  const double eps = flags.get_double("eps", 1e-8);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 7)));

  // 1. The communication network doubles as the system matrix: L(grid).
  const Graph g = make_grid(rows, cols);
  std::cout << "network: " << g.describe() << "\n";

  // 2. A right-hand side in range(L): inject current at one corner, extract
  //    at the opposite corner.
  Vec b(g.num_nodes(), 0.0);
  b.front() = 1.0;
  b.back() = -1.0;

  // 3. Pick the model: the shortcut PA oracle = (Supported-)CONGEST.
  ShortcutPaOracle oracle(g, rng);
  LaplacianSolverOptions options;
  options.tolerance = eps;
  DistributedLaplacianSolver solver(oracle, rng, options);

  // 4. Solve and report.
  const LaplacianSolveReport report = solver.solve(b);
  std::cout << "converged:          " << (report.converged ? "yes" : "no") << "\n"
            << "relative residual:  " << report.relative_residual << "\n"
            << "outer iterations:   " << report.outer_iterations << "\n"
            << "PA oracle calls:    " << report.pa_calls << "\n"
            << "CONGEST rounds:     " << report.local_rounds << "\n"
            << "chain levels:       " << solver.num_levels() << "\n";

  // 5. Cross-check against a sequential CG reference.
  SolveOptions ref_options;
  ref_options.tolerance = 1e-12;
  const SolveResult ref = solve_laplacian_cg(g, b, ref_options);
  std::cout << "vs sequential CG (L-norm error): "
            << relative_error_in_l_norm(g, report.x, ref.x) << "\n";
  return report.converged ? 0 : 1;
}
