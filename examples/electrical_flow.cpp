// Electrical flows and effective resistance — the classic application the
// Laplacian paradigm motivates (max-flow, sparsification, random spanning
// trees all reduce to these primitives).
//
// On a weighted grid "resistor network", computes the s–t electrical flow
// via one distributed Laplacian solve, prints the effective resistance, and
// verifies flow conservation at every internal node.
//
//   ./electrical_flow [--rows 12] [--cols 12] [--seed 3]
#include <cmath>
#include <iostream>

#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  const std::size_t rows = static_cast<std::size_t>(flags.get_int("rows", 12));
  const std::size_t cols = static_cast<std::size_t>(flags.get_int("cols", 12));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 3)));

  const Graph g = make_weighted_grid(rows, cols, rng, 1.0, 8.0);
  const NodeId s = 0;
  const NodeId t = static_cast<NodeId>(g.num_nodes() - 1);
  std::cout << "resistor network: " << g.describe() << "\n";

  Vec b(g.num_nodes(), 0.0);
  b[s] = 1.0;
  b[t] = -1.0;

  ShortcutPaOracle oracle(g, rng);
  LaplacianSolverOptions options;
  options.tolerance = 1e-10;
  DistributedLaplacianSolver solver(oracle, rng, options);
  const LaplacianSolveReport report = solver.solve(b);

  // Potentials x induce the unit electrical flow f_e = w_e (x_u − x_v).
  const Vec& x = report.x;
  const double r_eff = x[s] - x[t];
  std::cout << "effective resistance R(s,t) = " << r_eff << "\n"
            << "CONGEST rounds: " << report.local_rounds
            << ", PA calls: " << report.pa_calls << "\n";

  // Flow conservation: net flow at internal nodes ~ 0; at s it is +1.
  double worst_violation = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    double net = 0.0;
    for (const Adjacency& a : g.neighbors(v)) {
      const Edge& e = g.edge(a.edge);
      net += e.weight * (x[v] - x[a.neighbor]);
    }
    const double expected = (v == s) ? 1.0 : (v == t ? -1.0 : 0.0);
    worst_violation = std::max(worst_violation, std::abs(net - expected));
  }
  std::cout << "worst conservation violation: " << worst_violation << "\n";

  // The five hottest edges by |flow|.
  Table table({"edge", "u", "v", "weight", "flow"});
  std::vector<std::pair<double, EdgeId>> flows;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const Edge& edge = g.edge(e);
    flows.push_back({std::abs(edge.weight * (x[edge.u] - x[edge.v])), e});
  }
  std::sort(flows.rbegin(), flows.rend());
  for (int i = 0; i < 5 && i < static_cast<int>(flows.size()); ++i) {
    const Edge& edge = g.edge(flows[i].second);
    table.add_row({Table::cell(static_cast<std::size_t>(flows[i].second)),
                   Table::cell(static_cast<std::size_t>(edge.u)),
                   Table::cell(static_cast<std::size_t>(edge.v)),
                   Table::cell(edge.weight), Table::cell(flows[i].first, 4)});
  }
  table.print(std::cout);
  return worst_violation < 1e-6 ? 0 : 1;
}
