// HYBRID vs CONGEST: the same Laplacian solve driven once by the shortcut
// PA oracle (local CONGEST rounds) and once by the NCC oracle (global
// capacitated-clique rounds) — Theorem 2 vs Theorem 3 side by side.
//
//   ./hybrid_model [--n 128] [--degree 4] [--seed 5]
#include <iostream>

#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 128));
  const std::size_t degree = static_cast<std::size_t>(flags.get_int("degree", 4));
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 5)));

  const Graph g = make_random_regular(n, degree, rng);
  std::cout << "network: " << g.describe() << " (expander; SQ = polylog)\n\n";

  Vec b(g.num_nodes(), 0.0);
  b.front() = 1.0;
  b.back() = -1.0;

  Table table({"model", "oracle", "rounds", "PA calls", "residual"});
  for (int mode = 0; mode < 2; ++mode) {
    Rng run_rng(17);
    std::unique_ptr<CongestedPaOracle> oracle;
    if (mode == 0) {
      oracle = std::make_unique<ShortcutPaOracle>(g, run_rng);
    } else {
      oracle = std::make_unique<NccPaOracle>(g, run_rng);
    }
    LaplacianSolverOptions options;
    options.tolerance = 1e-8;
    DistributedLaplacianSolver solver(*oracle, run_rng, options);
    const LaplacianSolveReport report = solver.solve(b);
    const std::uint64_t rounds =
        mode == 0 ? report.local_rounds : report.hybrid_rounds;
    table.add_row({mode == 0 ? "CONGEST" : "HYBRID", oracle->name(),
                   Table::cell(rounds), Table::cell(report.pa_calls),
                   Table::cell(report.relative_residual, 10)});
  }
  table.print(std::cout);
  std::cout << "\nHYBRID trades per-edge local bandwidth for O(log n)\n"
               "global messages per node per round (Lemma 26), turning PA\n"
               "calls into O(rho + log n)-round operations.\n";
  return 0;
}
