// Explore a network's shortcut-quality profile: load a graph (from a file
// in the simple edge-list format, or a built-in family), estimate SQ(G),
// and profile one part-wise aggregation under all three oracle models —
// the quickest way to see where a given topology sits on the paper's
// universal-optimality map.
//
//   ./sq_explorer --family grid --n 100
//   ./sq_explorer --file my_network.txt --parts 12
#include <cmath>
#include <iostream>

#include "graph/generators.hpp"
#include "graph/graph_io.hpp"
#include "laplacian/pa_oracle.hpp"
#include "shortcuts/quality_estimator.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace dls;
  const Flags flags(argc, argv);
  Rng rng(static_cast<std::uint64_t>(flags.get_int("seed", 17)));

  Graph g;
  if (flags.has("file")) {
    g = read_graph_file(flags.get("file", ""));
  } else {
    const std::string family = flags.get("family", "grid");
    const std::size_t n = static_cast<std::size_t>(flags.get_int("n", 100));
    const std::size_t side = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(n)) + 0.5);
    if (family == "grid") g = make_grid(side, side);
    else if (family == "expander") g = make_random_regular(n, 4, rng);
    else if (family == "cycle") g = make_cycle(n);
    else if (family == "social") g = make_preferential_attachment(n, 3, rng);
    else {
      std::cerr << "unknown family: " << family
                << " (grid | expander | cycle | social)\n";
      return 2;
    }
  }
  std::cout << "network: " << g.describe() << "\n\n";

  const SqEstimate sq = estimate_shortcut_quality(g, rng);
  std::cout << "hop-diameter D ~ " << sq.diameter << "\n"
            << "SQ estimate    ~ " << sq.quality << "  (SQ = Omega(D) always; "
            << "polylog-over-D means shortcuts help a lot)\n\n";
  Table samples({"partition family", "parts", "congestion", "dilation",
                 "quality", "construction"});
  for (const SqSample& s : sq.samples) {
    samples.add_row({s.partition_family, Table::cell(s.num_parts),
                     Table::cell(s.quality.congestion),
                     Table::cell(s.quality.dilation),
                     Table::cell(s.quality.quality()), s.construction});
  }
  samples.print(std::cout);

  const std::size_t k = static_cast<std::size_t>(
      flags.get_int("parts", static_cast<std::int64_t>(
                                 std::max<std::size_t>(4, g.num_nodes() / 12))));
  const PartCollection pc = random_voronoi_partition(g, k, rng);
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  std::cout << "\naggregating over " << pc.num_parts()
            << " Voronoi parts under each model:\n";
  Table profile({"oracle", "rounds (local)", "rounds (global)"});
  {
    Rng r(23);
    ShortcutPaOracle oracle(g, r);
    oracle.aggregate_once(pc, values, AggregationMonoid::sum());
    profile.add_row({"shortcut (Supported-CONGEST)",
                     Table::cell(oracle.ledger().total_local()),
                     Table::cell(oracle.ledger().total_global())});
  }
  {
    Rng r(23);
    BaselinePaOracle oracle(g, r);
    oracle.aggregate_once(pc, values, AggregationMonoid::sum());
    profile.add_row({"baseline (existential)",
                     Table::cell(oracle.ledger().total_local()),
                     Table::cell(oracle.ledger().total_global())});
  }
  {
    Rng r(23);
    NccPaOracle oracle(g, r);
    oracle.aggregate_once(pc, values, AggregationMonoid::sum());
    profile.add_row({"ncc (HYBRID global mode)",
                     Table::cell(oracle.ledger().total_local()),
                     Table::cell(oracle.ledger().total_global())});
  }
  profile.print(std::cout);
  return 0;
}
