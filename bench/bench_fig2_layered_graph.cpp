// E12 (Figure 2 / Lemma 16): layered-graph construction costs — |V(Ĝ_ρ)|,
// |E(Ĝ_ρ)| split into lifted vs clique edges, diameter, and the Lemma 16
// simulation overhead (ρ local rounds per layered round).
#include "bench_common.hpp"
#include "congested_pa/layered_graph.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E12 / Figure 2 + Lemma 16",
         "layered graph sizes and simulation overhead");

  const Graph g = make_grid(8, 8);
  std::cout << "base: " << g.describe() << ", D = " << exact_diameter(g)
            << "\n\n";
  Table table({"rho", "nodes", "lifted edges", "clique edges", "total edges",
               "diameter", "sim overhead (rounds per layered round)"});
  for (std::size_t rho : {1u, 2u, 4u, 8u, 16u}) {
    const LayeredGraph layered(g, rho);
    const std::size_t lifted = rho * g.num_edges();
    const std::size_t clique = g.num_nodes() * rho * (rho - 1) / 2;
    table.add_row({Table::cell(rho), Table::cell(layered.graph().num_nodes()),
                   Table::cell(lifted), Table::cell(clique),
                   Table::cell(layered.graph().num_edges()),
                   Table::cell(static_cast<std::size_t>(
                       exact_diameter(layered.graph()))),
                   Table::cell(rho)});
  }
  table.print(std::cout);
  footnote(
      "Expected shape: nodes and lifted edges grow linearly in rho, clique "
      "edges quadratically (each node becomes a rho-clique, Figure 2), the "
      "diameter stays D + O(1), and simulating one layered round costs "
      "exactly rho real rounds (Lemma 16) — the multiplicative overhead the "
      "congested-PA pipeline charges.");
  return 0;
}
