// E19: the shortcut "ecosystem" ([20]'s original motivation): MST and
// global min cut, both expressed in PA-oracle calls, measured across
// topologies and oracle models. The Laplacian solver (E8) is the paper's
// addition to exactly this family.
#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "laplacian/mincut.hpp"
#include "laplacian/spanning_tree.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E19 / ecosystem", "MST and Min-Cut through the PA oracle");

  Rng gen(67);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 10x10", make_weighted_grid(10, 10, gen)});
  cases.push_back({"expander n=100", make_random_regular(100, 4, gen)});
  cases.push_back({"pref-attach n=100", make_preferential_attachment(100, 3, gen)});

  std::cout << "MST (Boruvka over PA):\n";
  {
    Table table({"topology", "oracle", "phases", "PA calls", "rounds",
                 "weight ok"});
    for (const Case& c : cases) {
      const double reference = [&] {
        double total = 0;
        for (EdgeId e : mst_kruskal(c.graph)) total += c.graph.edge(e).weight;
        return total;
      }();
      for (int model = 0; model < 2; ++model) {
        Rng rng(11);
        std::unique_ptr<CongestedPaOracle> oracle;
        if (model == 0) {
          oracle = std::make_unique<ShortcutPaOracle>(c.graph, rng);
        } else {
          oracle = std::make_unique<NccPaOracle>(c.graph, rng);
        }
        const DistributedMstResult result = distributed_mst(*oracle, rng);
        double total = 0;
        for (EdgeId e : result.tree_edges) total += c.graph.edge(e).weight;
        const std::uint64_t rounds = model == 0
                                         ? oracle->ledger().total_local()
                                         : oracle->ledger().total_global();
        table.add_row({c.name, oracle->name(),
                       Table::cell(static_cast<std::size_t>(result.phases)),
                       Table::cell(result.pa_calls), Table::cell(rounds),
                       std::abs(total - reference) < 1e-6 ? "yes" : "NO"});
      }
    }
    table.print(std::cout);
  }

  std::cout << "\nMin-Cut (random-tree sampling over PA):\n";
  {
    Table table({"topology", "exact cut", "found cut", "ratio", "PA calls",
                 "local rounds"});
    for (const Case& c : cases) {
      Rng rng(13);
      ShortcutPaOracle oracle(c.graph, rng);
      const ApproxMinCutResult result = approx_min_cut(oracle, rng, 8);
      table.add_row({c.name, Table::cell(result.exact_value),
                     Table::cell(result.cut_value),
                     Table::cell(result.ratio), Table::cell(result.pa_calls),
                     Table::cell(result.local_rounds)});
    }
    table.print(std::cout);
  }
  footnote(
      "Expected shape: MST completes in O(log n) Boruvka phases with a "
      "handful of PA calls per phase under both local and global oracles; "
      "min-cut ratios stay within small constants of Stoer-Wagner. The "
      "whole ecosystem — MST, Min-Cut, and the paper's Laplacian solver — "
      "rides the same oracle, which is the unification the paper argues "
      "for.");
  return 0;
}
