// E16 (paper §5 conclusion): the solver as a max-flow engine. The paper
// notes its results "directly imply an exact O(m^{1/2+o(1)}·SQ(G))
// algorithm for the max-flow problem via [12]"; we regenerate the shape of
// that implication with the electrical-flow MWU scheme — approximation
// quality vs iterations, and the per-model round costs of the whole
// application (shortcut CONGEST vs baseline vs HYBRID).
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/maxflow.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E16 / max-flow application",
         "electrical-flow max flow: accuracy and per-model round costs");

  std::cout << "accuracy vs iterations (weighted 7x7 grid, corner-to-corner):\n";
  {
    Rng gen(51);
    const Graph g = make_weighted_grid(7, 7, gen, 1.0, 8.0);
    Table table({"iterations", "approx ratio", "PA calls", "local rounds"});
    for (int iters : {1, 4, 12, 32}) {
      Rng rng(5);
      ElectricalMaxFlowOptions options;
      options.iterations = iters;
      const auto result = approx_max_flow_electrical(
          g, 0, static_cast<NodeId>(g.num_nodes() - 1), rng,
          MaxFlowModel::kShortcut, options);
      table.add_row({Table::cell(static_cast<long long>(iters)),
                     Table::cell(result.approximation),
                     Table::cell(result.pa_calls),
                     Table::cell(result.local_rounds)});
    }
    table.print(std::cout);
  }

  std::cout << "\nper-model cost (unit 12x12 grid, 12 iterations, deep chain):\n";
  {
    const Graph g = make_grid(12, 12);
    Table table({"model", "approx ratio", "local rounds", "global rounds"});
    for (const auto [model, name] :
         {std::pair{MaxFlowModel::kShortcut, "CONGEST (shortcut)"},
          std::pair{MaxFlowModel::kBaseline, "CONGEST (baseline)"},
          std::pair{MaxFlowModel::kNcc, "HYBRID (ncc)"}}) {
      Rng rng(5);
      ElectricalMaxFlowOptions options;
      options.iterations = 12;
      options.base_size = 24;  // force minor levels so the oracles differ
      options.max_levels = 3;  // fixed-depth chain as in E8/E10
      options.inner_iterations = 4;
      const auto result = approx_max_flow_electrical(
          g, 0, static_cast<NodeId>(g.num_nodes() - 1), rng, model, options);
      table.add_row({name, Table::cell(result.approximation),
                     Table::cell(result.local_rounds),
                     Table::cell(result.global_rounds)});
    }
    table.print(std::cout);
  }
  footnote(
      "Expected shape: the approximation ratio climbs toward 1 with MWU "
      "iterations; total rounds are ~iterations x (solver cost), so the "
      "per-model ordering mirrors E8/E10 — the application inherits the "
      "solver's universal-optimality profile, which is the point of §5.");
  return 0;
}
