// Warm solver-state cache (docs/CACHING.md): cold per-query stacks vs one
// SolverCache entry serving a query stream, under the CONGEST shortcut
// oracle — the model where every cold PA call re-pays shortcut construction
// that a long-lived entry builds (and is charged for) exactly once. Three
// claims are on display: (1) per-query simulated-round savings of a warm
// entry on an unchanged graph — solo (one solve per arriving query) and
// batched (the stream fanned through the entry's session, docs/BATCHING.md)
// — with the entry's one-time build charge and the break-even query count
// reported next to them; (2) the determinism
// contract — every warm solution is asserted bit-identical to its cold
// solve inside the bench itself; (3) the dynamic-update ladder — a scripted
// perturbation stream (uniform rescale, small off-tree nudges, a tree-edge
// bump, a structural-scale jolt) routed through update_weights, with the
// classification mix and per-update charged rounds tabulated.
//
// Flags: --smoke (small grid for CI), --json PATH (flat metrics for
// scripts/bench_compare.py), --trace PATH (Chrome trace of the run),
// --queries N (query stream length per family).
#include <algorithm>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/solver_cache.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

using namespace dls;
using namespace dls::bench;

namespace {

struct Family {
  std::string name;  // doubles as the metric key prefix
  Graph graph;
};

std::vector<Family> make_families(bool smoke) {
  Rng gen_rng(13);
  std::vector<Family> families;
  if (smoke) {
    families.push_back({"grid", make_grid(9, 9)});
    families.push_back({"expander", make_random_regular(96, 4, gen_rng)});
    families.push_back({"weighted-grid", make_weighted_grid(8, 8, gen_rng)});
  } else {
    families.push_back({"grid", make_grid(16, 16)});
    families.push_back({"expander", make_random_regular(256, 4, gen_rng)});
    families.push_back({"weighted-grid", make_weighted_grid(12, 12, gen_rng)});
  }
  return families;
}

constexpr std::uint64_t kStackSeed = 7001;

LaplacianSolverOptions solver_options() {
  LaplacianSolverOptions options;
  options.tolerance = 1e-6;
  options.base_size = 40;
  // Chebyshev with an rhs-independent λ_max estimate: the warm entry reuses
  // the eigenbounds across the query stream (skipping the charged power
  // iterations from the second solve on) while staying bit-identical to the
  // cold stacks, which compute the same operator-only estimate per query.
  options.outer = OuterIteration::kChebyshev;
  options.rhs_independent_eigenbounds = true;
  // The scripted x10 jolt leaves one edge far off the preconditioner's
  // weight profile; Chebyshev needs ~10^3 iterations there at full size.
  options.max_outer_iterations = 4000;
  return options;
}

/// One cold serving stack: everything rebuilt from kStackSeed, CONGEST
/// model, exactly what a SolverCache entry is bit-interchangeable with.
struct ColdStack {
  Rng rng;
  ShortcutPaOracle oracle;
  DistributedLaplacianSolver solver;

  explicit ColdStack(const Graph& g)
      : rng(kStackSeed),
        oracle(g, rng, SchedulingPolicy::kRandomPriority, PaModel::kCongest),
        solver(oracle, rng, solver_options()) {}
};

/// The scripted perturbation stream for the update-ladder table. Each step
/// maps the current logical weights to the next ones; the expected rung is
/// asserted so the bench doubles as an end-to-end classification check.
struct UpdateStep {
  std::string label;
  WeightUpdateClass expected;
};

}  // namespace

int main(int argc, char** argv) {
  const WallTimer total_timer;
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const std::string json_path = flags.get("json", "");
  const auto num_queries =
      static_cast<std::size_t>(flags.get_int("queries", smoke ? 4 : 8));
  std::unique_ptr<TraceSession> trace;
  const std::string trace_path = flags.get("trace", "");
  if (!trace_path.empty()) trace = std::make_unique<TraceSession>(trace_path);

  banner("solver-state cache reuse",
         "cold per-query stacks vs one warm cache entry (CONGEST shortcuts)");

  JsonMetrics metrics("cache_reuse");
  Table table({"family", "n", "queries", "cold rounds/q", "warm solo r/q",
               "warm batch r/q", "saved solo", "saved batch", "build rounds",
               "break-even q", "cold ms", "warm ms", "bit-identical"});
  Table updates({"family", "update", "class", "sigma", "charged rounds"});
  double worst_saved = 1.0;

  for (const Family& family : make_families(smoke)) {
    const std::size_t n = family.graph.num_nodes();
    Rng rhs_rng(4242);
    std::vector<Vec> queries;
    queries.reserve(num_queries);
    for (std::size_t q = 0; q < num_queries; ++q) {
      queries.push_back(random_rhs(n, rhs_rng));
    }

    // Cold serving: a fresh stack per query — under the CONGEST model every
    // query pays shortcut construction inside its PA calls.
    WallTimer cold_timer;
    std::vector<LaplacianSolveReport> cold_reports;
    cold_reports.reserve(num_queries);
    for (const Vec& b : queries) {
      ColdStack stack(family.graph);
      cold_reports.push_back(stack.solver.solve(b));
    }
    const double cold_seconds = cold_timer.seconds();
    std::uint64_t cold_rounds = 0;
    for (const auto& r : cold_reports) {
      cold_rounds += r.local_rounds + r.global_rounds;
    }

    // Warm serving: one cache entry, built (and charged) once, then queried.
    // Two warm modes, both bit-identical to the cold solves:
    //  - solo: one entry.solve() per arriving query. Skips the per-call
    //    shortcut-construction charge and the per-query Chebyshev power
    //    iteration; still pays each query's data movement in full.
    //  - batch: the entry's SolveSession fans the stream out through the
    //    batched multi-RHS path (docs/BATCHING.md), so the shared charges
    //    pipeline round-robin on the entry's ledger. This is the serving
    //    mode the ≥60% bar of docs/CACHING.md is stated for.
    SolverCacheOptions cache_options;
    cache_options.solver = solver_options();
    cache_options.oracle = CacheOracleKind::kShortcutCongest;
    cache_options.seed = kStackSeed;
    SolverCache cache(cache_options);
    WallTimer warm_timer;
    CachedSolverState& entry = cache.acquire(family.graph).state;
    std::vector<LaplacianSolveReport> warm_reports;
    warm_reports.reserve(num_queries);
    for (const Vec& b : queries) warm_reports.push_back(entry.solve(b));
    std::uint64_t warm_solo_rounds = 0;
    for (const auto& r : warm_reports) {
      warm_solo_rounds += r.local_rounds + r.global_rounds;
    }
    // Batched warm serving, accounted as the ledger delta the entry's oracle
    // actually charges for the whole stream (per-RHS reports deliberately
    // keep full unamortized rounds; docs/BATCHING.md).
    const RoundLedger& entry_ledger = entry.oracle().ledger();
    const std::uint64_t batch_before =
        entry_ledger.total_local() + entry_ledger.total_global();
    const std::vector<LaplacianSolveReport> batch_reports =
        entry.solve_batch(queries);
    const std::uint64_t warm_batch_rounds =
        entry_ledger.total_local() + entry_ledger.total_global() - batch_before;
    const double warm_seconds = warm_timer.seconds();

    // The determinism contract, checked in the bench itself: warm charging
    // and state reuse never move a single bit of any solution, solo or
    // batched.
    bool identical = true;
    for (std::size_t q = 0; identical && q < num_queries; ++q) {
      identical = warm_reports[q].x == cold_reports[q].x &&
                  batch_reports[q].x == cold_reports[q].x &&
                  warm_reports[q].outer_iterations ==
                      cold_reports[q].outer_iterations &&
                  warm_reports[q].residual_history ==
                      cold_reports[q].residual_history;
    }
    DLS_REQUIRE(identical, "warm cached solve diverged from cold solve (" +
                               family.name + ")");

    const auto fraction_saved = [&](std::uint64_t warm) {
      return 1.0 - static_cast<double>(warm) /
                       static_cast<double>(std::max<std::uint64_t>(cold_rounds, 1));
    };
    const double saved_solo = fraction_saved(warm_solo_rounds);
    const double saved_batch = fraction_saved(warm_batch_rounds);
    worst_saved = std::min(worst_saved, saved_batch);
    const std::uint64_t build = entry.build_rounds();
    const double cold_per_query =
        static_cast<double>(cold_rounds) / static_cast<double>(num_queries);
    const double warm_solo_per_query = static_cast<double>(warm_solo_rounds) /
                                       static_cast<double>(num_queries);
    const double warm_batch_per_query = static_cast<double>(warm_batch_rounds) /
                                        static_cast<double>(num_queries);
    // Queries after which build + batched warm serving beats cold serving.
    const double break_even =
        static_cast<double>(build) /
        std::max(cold_per_query - warm_batch_per_query, 1e-9);

    table.add_row({family.name, Table::cell(n), Table::cell(num_queries),
                   Table::cell(cold_per_query, 0),
                   Table::cell(warm_solo_per_query, 0),
                   Table::cell(warm_batch_per_query, 0),
                   Table::cell(saved_solo), Table::cell(saved_batch),
                   Table::cell(build), Table::cell(break_even),
                   Table::cell(cold_seconds * 1e3),
                   Table::cell(warm_seconds * 1e3), identical ? "yes" : "NO"});

    const std::string prefix = family.name + "/";
    metrics.set(prefix + "rounds_cold_per_query", cold_per_query);
    metrics.set(prefix + "rounds_warm_solo_per_query", warm_solo_per_query);
    metrics.set(prefix + "rounds_warm_batch_per_query", warm_batch_per_query);
    metrics.set(prefix + "saved_solo_fraction", saved_solo);
    metrics.set(prefix + "saved_fraction", saved_batch);
    metrics.set(prefix + "build_rounds", static_cast<double>(build));
    metrics.set(prefix + "break_even_queries", break_even);
    metrics.set(prefix + "wall_cold_ms", cold_seconds * 1e3);
    metrics.set(prefix + "wall_warm_ms", warm_seconds * 1e3);

    // ---- Dynamic weight updates: the classification ladder end to end. ----
    // Each step perturbs the *logical* weights and re-acquires, so the diff
    // routes through update_weights exactly as a serving loop's would.
    Graph current(family.graph.num_nodes());
    for (const Edge& e : family.graph.edges()) {
      current.add_edge(e.u, e.v, e.weight);
    }
    const std::vector<EdgeId> tree = entry.solver().level0_tree_edges();
    std::vector<char> on_tree(current.num_edges(), 0);
    for (EdgeId e : tree) on_tree[e] = 1;
    EdgeId off_tree = 0;
    for (EdgeId e = 0; e < current.num_edges(); ++e) {
      if (on_tree[e] == 0) { off_tree = e; break; }
    }
    const auto apply_and_acquire = [&](const std::string& label,
                                       WeightUpdateClass expected) {
      auto acquired = cache.acquire(current);
      DLS_REQUIRE(acquired.hit, "update stream must hit the cached structure");
      const WeightUpdateReport& report = acquired.update;
      DLS_REQUIRE(report.classification == expected,
                  "update '" + label + "' classified as " +
                      to_string(report.classification) + ", expected " +
                      to_string(expected));
      // One query after each update keeps the stream honest: the entry must
      // actually answer for the perturbed graph.
      const LaplacianSolveReport r = acquired.state.solve(queries[0]);
      DLS_REQUIRE(r.converged, "post-update solve failed on " + label);
      updates.add_row({family.name, label, to_string(report.classification),
                       Table::cell(report.spectral_ratio),
                       Table::cell(report.charged_local_rounds)});
      metrics.set(prefix + "update/" + label + "/class",
                  static_cast<double>(static_cast<int>(report.classification)));
      metrics.set(prefix + "update/" + label + "/charged_rounds",
                  static_cast<double>(report.charged_local_rounds));
    };

    // Uniform ×2: exact rescale, nothing rebuilt.
    for (EdgeId e = 0; e < current.num_edges(); ++e) {
      current.set_weight(e, current.edge(e).weight * 2.0);
    }
    apply_and_acquire("uniform-x2", WeightUpdateClass::kRescale);
    // One off-tree edge ×1.15: reuse the chain as a stale preconditioner.
    current.set_weight(off_tree, current.edge(off_tree).weight * 1.15);
    apply_and_acquire("offtree-x1.15", WeightUpdateClass::kReusePreconditioner);
    // A level-0 tree edge ×1.5: numerics re-derived through the provenance.
    if (!tree.empty()) {
      current.set_weight(tree.front(), current.edge(tree.front()).weight * 1.5);
      apply_and_acquire("tree-x1.5", WeightUpdateClass::kPartialRebuild);
    }
    // One edge ×10: past every similarity limit, fresh stack from the seed.
    current.set_weight(off_tree, current.edge(off_tree).weight * 10.0);
    apply_and_acquire("edge-x10", WeightUpdateClass::kFullRebuild);

    metrics.set(prefix + "full_rebuilds",
                static_cast<double>(cache.acquire(current).state.full_rebuilds()));
  }

  table.print(std::cout);
  std::cout << "\nupdate-classification mix (scripted perturbation stream)\n";
  updates.print(std::cout);
  // The acceptance bar of docs/CACHING.md, checked after the tables so a
  // regression still prints its diagnostics: a warm entry serving the query
  // stream through its batched session must save at least 60% of the cold
  // per-query rounds on an unchanged graph.
  DLS_REQUIRE(worst_saved >= 0.60,
              "warm batched serving saved only " +
                  std::to_string(worst_saved * 100) +
                  "% of cold rounds on the worst family "
                  "(docs/CACHING.md promises >= 60%)");
  footnote(
      "Expected shape: solo warm solves save the per-call shortcut "
      "construction the CONGEST cold path re-pays inside every PA call (plus "
      "the per-query Chebyshev power iteration); batched warm serving "
      "additionally pipelines the stream through the entry's session and "
      "drops >= 60% below cold (the docs/CACHING.md bar; break-even q = "
      "build rounds amortized against per-query batch savings). Solutions "
      "are bit-identical in all three modes; only charged rounds move. The "
      "update ladder classifies uniform scaling as an exact rescale, "
      "sub-1.25x off-tree drift as preconditioner reuse, tree-edge drift as "
      "a provenance reweight sweep, and a 10x jolt as a full rebuild from "
      "the entry's seed.");
  print_wall_clock(BenchRuntime{}, total_timer);  // single-threaded bench
  metrics.write(json_path);
  return 0;
}
