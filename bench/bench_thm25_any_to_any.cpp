// E15 (Theorem 25): shortcut quality is characterized (up to polylog) by the
// worst-case completion time of any-to-any-cast over node-disjointly
// connectable source/sink sets. We construct hard disjointly-connectable
// instances per family, route them (flow matching + congestion-aware
// unicast), simulate the store-and-forward schedule, and compare the
// measured completion times against the family's SQ estimate.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "shortcuts/quality_estimator.hpp"
#include "shortcuts/unicast.hpp"

using namespace dls;
using namespace dls::bench;

namespace {

struct Instance {
  std::vector<NodeId> sources;
  std::vector<NodeId> sinks;
};

Instance grid_left_right(std::size_t side) {
  Instance inst;
  for (std::size_t r = 0; r < side; ++r) {
    inst.sources.push_back(static_cast<NodeId>(r * side));
    inst.sinks.push_back(static_cast<NodeId>(r * side + side - 1));
  }
  return inst;
}

Instance random_pairs(const Graph& g, std::size_t k, Rng& rng) {
  Instance inst;
  const auto perm = rng.permutation(g.num_nodes());
  for (std::size_t i = 0; i < k && 2 * i + 1 < perm.size(); ++i) {
    inst.sources.push_back(static_cast<NodeId>(perm[2 * i]));
    inst.sinks.push_back(static_cast<NodeId>(perm[2 * i + 1]));
  }
  return inst;
}

}  // namespace

int main() {
  banner("E15 / Theorem 25",
         "any-to-any-cast completion time tracks the SQ estimate");

  Rng rng(47);
  Table table({"family", "k", "quality (max(c,d))", "routed rounds",
               "SQ~(G)", "rounds/SQ~"});
  struct Case {
    const char* name;
    Graph graph;
    Instance inst;
  };
  std::vector<Case> cases;
  {
    const std::size_t side = 10;
    Graph g = make_grid(side, side);
    cases.push_back({"grid 10x10 (left->right)", std::move(g),
                     grid_left_right(side)});
  }
  {
    Graph g = make_random_regular(100, 4, rng);
    Instance inst = random_pairs(g, 40, rng);
    cases.push_back({"expander n=100 (random 40 pairs)", std::move(g),
                     std::move(inst)});
  }
  {
    // Clustered sides are the cycle's worst case even under free matching:
    // every pairing must cross ~n/2 hops through two directions.
    Graph g = make_cycle(100);
    Instance inst;
    for (std::size_t i = 0; i < 10; ++i) {
      inst.sources.push_back(static_cast<NodeId>(i));
      inst.sinks.push_back(static_cast<NodeId>(50 + i));
    }
    cases.push_back({"cycle n=100 (clustered sides)", std::move(g),
                     std::move(inst)});
  }

  for (Case& c : cases) {
    const UnicastSolution solution =
        any_to_any_cast(c.graph, c.inst.sources, c.inst.sinks, rng);
    const std::uint64_t rounds =
        simulate_packet_routing(c.graph, solution.paths, rng);
    const SqEstimate sq = estimate_shortcut_quality(c.graph, rng);
    table.add_row({c.name, Table::cell(c.inst.sources.size()),
                   Table::cell(solution.quality()), Table::cell(rounds),
                   Table::cell(sq.quality),
                   Table::cell(static_cast<double>(rounds) /
                               static_cast<double>(std::max<std::size_t>(
                                   sq.quality, 1)))});
  }
  table.print(std::cout);
  footnote(
      "Expected shape: each instance's routed rounds stay BELOW a small "
      "multiple of SQ~ (Theorem 25's upper direction: any disjointly "
      "connectable any-to-any-cast completes in O~(SQ) rounds), and the "
      "worst-case instances per family (grid left->right, cycle clustered) "
      "push rounds/SQ~ toward a constant — those are exactly the instances "
      "whose supremum defines SQ in the tau = Theta~(SQ(G)) equivalence.");
  return 0;
}
