// E5 (Corollary 20): on treewidth-bounded graphs, ρ-congested part-wise
// aggregation costs Õ(ρ²·tw·D) CONGEST rounds — one ρ from the layered
// graph's treewidth (Lemma 19) and one from simulating Ĝ_ρ in G (Lemma 16).
// We measure charged rounds vs ρ on bounded-tw families and fit the
// ρ-exponent; contrast with E6's linear-in-ρ general-graph pipeline claim.
#include "bench_common.hpp"
#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E5 / Corollary 20",
         "congested PA rounds on bounded-treewidth graphs vs congestion rho");

  Rng rng(5);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"caterpillar tw=1", make_caterpillar(12, 2)});
  cases.push_back({"cycle tw=2", make_cycle(36)});
  cases.push_back({"2-tree tw=2", make_k_tree(36, 2, rng)});

  for (const Case& c : cases) {
    Table table({"rho", "parts", "charged rounds", "layers used", "phases"});
    std::vector<double> xs, ys;
    for (std::size_t rho : {1u, 2u, 3u, 4u, 6u}) {
      const PartCollection pc = stacked_voronoi_instance(c.graph, 4, rho, rng);
      const auto values = unit_values(pc);
      const CongestedPaOutcome outcome = solve_congested_pa(
          c.graph, pc, values, AggregationMonoid::sum(), rng);
      table.add_row({Table::cell(rho), Table::cell(pc.num_parts()),
                     Table::cell(outcome.total_rounds),
                     Table::cell(outcome.max_layers),
                     Table::cell(static_cast<std::size_t>(outcome.phases))});
      if (rho >= 2) {  // rho = 1 takes the layering-free fast path
        xs.push_back(static_cast<double>(rho));
        ys.push_back(static_cast<double>(outcome.total_rounds));
      }
    }
    std::cout << c.name << " (" << c.graph.describe() << ")\n";
    table.print(std::cout);
    print_fit("rounds vs rho (layered regime, rho >= 2)", fit_power(xs, ys));
    std::cout << "\n";
  }
  footnote(
      "Expected shape: within the layered regime (rho >= 2; rho = 1 uses "
      "plain Proposition 6 and is much cheaper) rounds grow polynomially in "
      "rho with exponent <= 2 — Corollary 20 allows rho^2: one rho from "
      "tw(layered) (Lemma 19), one from simulation (Lemma 16).");
  return 0;
}
