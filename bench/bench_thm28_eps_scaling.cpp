// E9 (Theorem 28 / Theorem 2): round complexity scales as log(1/ε) — the
// solver's rounds grow linearly when the accuracy target tightens
// geometrically.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E9 / Theorem 28", "solver rounds scale linearly in log(1/eps)");

  const Graph g = make_grid(12, 12);
  Table table({"eps", "log10(1/eps)", "rounds", "PA calls", "outer iters",
               "residual", "recovery"});
  std::vector<double> xs, ys;
  for (double eps : {1e-2, 1e-4, 1e-6, 1e-8, 1e-10}) {
    Rng rng(29);
    ShortcutPaOracle oracle(g, rng);
    LaplacianSolverOptions options;
    options.tolerance = eps;
    options.base_size = 48;
    DistributedLaplacianSolver solver(oracle, rng, options);
    const LaplacianSolveReport report =
        solver.solve(random_rhs(g.num_nodes(), rng));
    // Clean oracle: "-" expected at every eps; anything else means the
    // ladder engaged without faults and the log(1/eps) fit is suspect.
    table.add_row({Table::cell(eps, 12),
                   Table::cell(std::log10(1.0 / eps)),
                   Table::cell(report.local_rounds),
                   Table::cell(report.pa_calls),
                   Table::cell(report.outer_iterations),
                   Table::cell(report.relative_residual, 12),
                   recovery_cell(report.recovery)});
    print_level_recovery("eps=" + Table::cell(eps, 12) + " recovery",
                         solver.level_stats());
    xs.push_back(std::log10(1.0 / eps));
    ys.push_back(static_cast<double>(report.local_rounds));
  }
  table.print(std::cout);
  const LinearFit fit = fit_linear(xs, ys);
  std::cout << "rounds ~ " << fit.intercept << " + " << fit.slope
            << " * log10(1/eps) (r2 = " << fit.r2 << ")\n";
  footnote(
      "Expected shape: a good linear fit (r2 close to 1) of rounds against "
      "log(1/eps) — each extra decimal digit of accuracy costs a constant "
      "number of additional outer PCG iterations, each a fixed bundle of "
      "PA calls. This is the log(1/eps) factor in Theorems 2 and 3.");
  return 0;
}
