// E17 (ablation): the two realizations of Lemma 15's general-parts
// reduction — the paper's Euler-tour simple-path splitting vs our default
// heavy-path decomposition. Heavy paths keep the path-instance congestion
// at exactly ρ (each part node lies on one heavy path) at the cost of
// O(log n) sequential levels; Euler segments run in one wave but inflate
// congestion by the tree degree of revisited nodes, which the layered
// pipeline then pays in layers (Lemma 16).
#include "bench_common.hpp"
#include "congested_pa/euler_paths.hpp"
#include "congested_pa/heavy_paths.hpp"
#include "graph/generators.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E17 / ablation",
         "Lemma 15 realizations: Euler-tour segments vs heavy paths");

  Rng rng(61);
  struct Case {
    const char* name;
    Graph graph;
    PartCollection parts;
  };
  std::vector<Case> cases;
  {
    Graph g = make_grid(8, 8);
    PartCollection pc = stacked_voronoi_instance(g, 4, 3, rng);
    cases.push_back({"grid 8x8, rho=3 stacked voronoi", std::move(g),
                     std::move(pc)});
  }
  {
    Graph g = make_random_regular(64, 4, rng);
    PartCollection pc = stacked_voronoi_instance(g, 4, 3, rng);
    cases.push_back({"expander n=64, rho=3 stacked voronoi", std::move(g),
                     std::move(pc)});
  }
  {
    Graph g = make_star(40);
    PartCollection pc;
    std::vector<NodeId> all(40);
    for (NodeId v = 0; v < 40; ++v) all[v] = v;
    pc.parts.push_back(all);
    pc.parts.push_back(all);
    cases.push_back({"star n=40, rho=2 full parts", std::move(g),
                     std::move(pc)});
  }

  Table table({"instance", "rho", "euler congestion", "euler segments",
               "heavy-path congestion", "heavy-path levels"});
  for (const Case& c : cases) {
    const std::size_t rho = congestion(c.graph, c.parts);
    const std::size_t euler_rho =
        euler_segment_congestion(c.graph, c.parts.parts);
    std::size_t euler_segments = 0;
    std::uint32_t hp_levels = 0;
    std::vector<std::size_t> hp_load(c.graph.num_nodes(), 0);
    std::size_t hp_rho = 0;
    for (const auto& part : c.parts.parts) {
      euler_segments += euler_path_decomposition(c.graph, part).segments.size();
      const HeavyPathDecomposition hpd = heavy_path_decomposition(c.graph, part);
      hp_levels = std::max(hp_levels, hpd.max_depth + 1);
      for (const auto& path : hpd.paths) {
        for (NodeId v : path) hp_rho = std::max(hp_rho, ++hp_load[v]);
      }
    }
    table.add_row({c.name, Table::cell(rho), Table::cell(euler_rho),
                   Table::cell(euler_segments), Table::cell(hp_rho),
                   Table::cell(static_cast<std::size_t>(hp_levels))});
  }
  table.print(std::cout);
  footnote(
      "Expected shape: heavy-path congestion equals the instance's rho "
      "exactly on every case, while Euler segments inflate congestion "
      "toward rho x tree-degree (dramatic on the star). Heavy paths pay "
      "instead with O(log n) sequential levels. Both realize Lemma 15; the "
      "library defaults to heavy paths because congestion multiplies the "
      "layered graph's size (Lemma 16) while levels only add.");
  return 0;
}
