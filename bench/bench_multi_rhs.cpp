// Multi-RHS batching: SolveSession::solve_batch vs N sequential solve()
// calls, across families × batch sizes × thread counts. Three claims are on
// display: (1) wall-clock speedup from fanning independent RHS across the
// ThreadPool — the hierarchy, Cholesky base factor, and measured PA
// instances are built once and reused; (2) simulated-round savings from
// amortized batch charging — concurrent PA aggregations over one measured
// shortcut instance pipeline as one congested phase instead of N replays;
// (3) the determinism contract — every batch result is asserted bit-identical
// to the sequential solve, for every thread count, inside the bench itself.
//
// Flags: --smoke (small grid for CI), --json PATH (flat metrics for
// scripts/bench_compare.py), --threads N (extra thread count to sweep),
// --cache (serve every family through a warm SolverCache entry; asserted
// bit-identical to the bare stack, so tables and metrics are unchanged).
#include <algorithm>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "laplacian/solver_cache.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

using namespace dls;
using namespace dls::bench;

namespace {

struct Family {
  std::string name;  // doubles as the metric key prefix
  Graph graph;
};

std::vector<Family> make_families(bool smoke) {
  Rng gen_rng(13);
  std::vector<Family> families;
  if (smoke) {
    families.push_back({"grid", make_grid(9, 9)});
    families.push_back({"expander", make_random_regular(96, 4, gen_rng)});
    families.push_back({"weighted-grid", make_weighted_grid(8, 8, gen_rng)});
  } else {
    families.push_back({"grid", make_grid(22, 22)});
    families.push_back({"expander", make_random_regular(384, 4, gen_rng)});
    families.push_back({"weighted-grid", make_weighted_grid(16, 16, gen_rng)});
  }
  return families;
}

std::vector<Vec> make_batch(std::size_t k, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec> bs;
  bs.reserve(k);
  for (std::size_t i = 0; i < k; ++i) bs.push_back(random_rhs(n, rng));
  return bs;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const bool use_cache = flags.get_bool("cache", false);
  const std::string json_path = flags.get("json", "");
  std::unique_ptr<TraceSession> trace;
  const std::string trace_path = flags.get("trace", "");
  if (!trace_path.empty()) trace = std::make_unique<TraceSession>(trace_path);

  banner("multi-RHS batching",
         "solve_batch vs sequential solves: wall clock + amortized rounds");

  const std::vector<Family> families = make_families(smoke);
  const std::vector<std::size_t> batch_sizes =
      smoke ? std::vector<std::size_t>{1, 4} : std::vector<std::size_t>{1, 4, 16};
  std::vector<std::size_t> thread_counts =
      smoke ? std::vector<std::size_t>{1, 2} : std::vector<std::size_t>{1, 2, 4};
  const auto extra = static_cast<std::size_t>(flags.get_int("threads", 0));
  if (extra > 0 &&
      std::find(thread_counts.begin(), thread_counts.end(), extra) ==
          thread_counts.end()) {
    thread_counts.push_back(extra);
  }

  JsonMetrics metrics("multi_rhs");
  Table table({"family", "n", "batch", "threads", "seq ms", "batch ms",
               "speedup", "seq rounds", "batch rounds", "rounds saved",
               "bit-identical"});

  LaplacianSolverOptions options;
  options.tolerance = 1e-6;
  options.base_size = 40;
  // --cache: one warm entry per family, bit-interchangeable with the bare
  // stack below (same seed, same oracle construction order). The cache holds
  // the entries alive across the family loop.
  std::unique_ptr<SolverCache> cache;
  if (use_cache) {
    SolverCacheOptions cache_options;
    cache_options.solver = options;
    cache_options.oracle = CacheOracleKind::kShortcutSupported;
    cache_options.seed = 42;
    cache_options.max_entries = families.size();
    cache = std::make_unique<SolverCache>(cache_options);
  }

  for (const Family& family : families) {
    const std::size_t n = family.graph.num_nodes();
    Rng rng(42);
    std::unique_ptr<ShortcutPaOracle> bare_oracle;
    std::unique_ptr<DistributedLaplacianSolver> bare_solver;
    DistributedLaplacianSolver* solver_ptr = nullptr;
    if (use_cache) {
      solver_ptr = &cache->acquire(family.graph).state.solver();
    } else {
      bare_oracle = std::make_unique<ShortcutPaOracle>(family.graph, rng);
      bare_solver =
          std::make_unique<DistributedLaplacianSolver>(*bare_oracle, rng, options);
      solver_ptr = bare_solver.get();
    }
    DistributedLaplacianSolver& solver = *solver_ptr;
    // Warm-up solve: measures every PA instance once, so neither timed path
    // pays one-off measurement cost and both charge cached costs only.
    const LaplacianSolveReport warmup = solver.solve(make_batch(1, n, 7)[0]);
    if (use_cache) {
      // The cache contract, checked in the bench itself: a cached entry's
      // solves are bit-identical to the bare (non-cached) stack's.
      Rng ref_rng(42);
      ShortcutPaOracle ref_oracle(family.graph, ref_rng);
      DistributedLaplacianSolver ref_solver(ref_oracle, ref_rng, options);
      const LaplacianSolveReport ref = ref_solver.solve(make_batch(1, n, 7)[0]);
      DLS_REQUIRE(warmup.x == ref.x &&
                      warmup.outer_iterations == ref.outer_iterations,
                  "cached solve diverged from the bare stack (family " +
                      family.name + ")");
    }

    for (const std::size_t k : batch_sizes) {
      const std::vector<Vec> bs = make_batch(k, n, 1234 + k);

      // Sequential baseline: k independent solve() calls on the shared path.
      WallTimer seq_timer;
      std::vector<LaplacianSolveReport> seq_reports;
      seq_reports.reserve(k);
      for (const Vec& b : bs) seq_reports.push_back(solver.solve(b));
      const double seq_seconds = seq_timer.seconds();
      std::uint64_t seq_rounds = 0;
      for (const auto& r : seq_reports) seq_rounds += r.local_rounds;

      for (const std::size_t threads : thread_counts) {
        std::unique_ptr<ThreadPool> pool;
        if (threads > 1) pool = std::make_unique<ThreadPool>(threads);

        SolveSession session(solver);
        WallTimer batch_timer;
        const auto batch_reports = session.solve_batch(bs, pool.get());
        const double batch_seconds = batch_timer.seconds();
        const std::uint64_t batch_rounds =
            session.last_batch_ledger().total_local();

        // The determinism contract, checked in the bench itself: every slot
        // is bit-identical to its sequential solve for every thread count.
        bool identical = batch_reports.size() == k;
        for (std::size_t i = 0; identical && i < k; ++i) {
          identical = batch_reports[i].x == seq_reports[i].x &&
                      batch_reports[i].outer_iterations ==
                          seq_reports[i].outer_iterations &&
                      batch_reports[i].local_rounds == seq_reports[i].local_rounds;
        }
        DLS_REQUIRE(identical,
                    "batch result diverged from sequential solves (family " +
                        family.name + ", batch " + std::to_string(k) +
                        ", threads " + std::to_string(threads) + ")");

        const double speedup = seq_seconds / std::max(batch_seconds, 1e-12);
        const double saved = 1.0 - static_cast<double>(batch_rounds) /
                                       static_cast<double>(std::max<std::uint64_t>(
                                           seq_rounds, 1));
        table.add_row({family.name, Table::cell(n), Table::cell(k),
                       Table::cell(threads), Table::cell(seq_seconds * 1e3),
                       Table::cell(batch_seconds * 1e3), Table::cell(speedup),
                       Table::cell(seq_rounds), Table::cell(batch_rounds),
                       Table::cell(saved), identical ? "yes" : "NO"});

        const std::string prefix = family.name + "/b" + std::to_string(k) +
                                   "/t" + std::to_string(threads) + "/";
        metrics.set(prefix + "wall_seq_ms", seq_seconds * 1e3);
        metrics.set(prefix + "wall_batch_ms", batch_seconds * 1e3);
        metrics.set(prefix + "speedup", speedup);
        metrics.set(prefix + "rounds_seq", static_cast<double>(seq_rounds));
        metrics.set(prefix + "rounds_batch", static_cast<double>(batch_rounds));
      }
    }
  }

  table.print(std::cout);
  footnote(
      "Expected shape: speedup ~ min(batch, threads) once per-RHS work "
      "dominates pool overhead (sequential baseline is timed once per batch "
      "size and reused across thread rows). Simulated rounds are thread-count "
      "invariant; 'rounds saved' is the amortized batch-charging win — "
      "concurrent PA calls over one measured instance pipeline instead of "
      "replaying, so it grows with batch size and is 0 at batch 1.");
  metrics.write(json_path);
  return 0;
}
