// E18: the part-wise aggregation primitive's cost profile — rounds vs the
// number of parts k, for all three oracle models on one topology. This is
// the per-call view underlying E8/E10: the baseline pays Θ(D + k), the
// shortcut pipeline tracks the shortcut quality (≈ D for grid-likes,
// independent of k), and NCC pays O(ρ + log n) regardless.
//
// Each k is one SimBatch scenario (three oracle calls); `--threads N` runs
// the sweep concurrently with bit-identical reported rounds. Oracle seeds
// stay pinned (the point of E18 is the k-dependence, not seed noise).
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/pa_oracle.hpp"

using namespace dls;
using namespace dls::bench;

int main(int argc, char** argv) {
  const BenchRuntime runtime = bench_runtime(argc, argv);
  banner("E18 / PA primitive",
         "aggregation rounds vs number of parts, per oracle model");

  const Graph g = make_grid(12, 12);
  std::cout << "topology: " << g.describe() << " (D = 22)\n\n";
  const std::vector<std::size_t> parts{2, 4, 8, 16, 32, 64};

  // results = {shortcut rounds, baseline rounds, ncc rounds,
  //            shortcut peak slot, baseline peak slot}.
  SimBatch batch(/*root_seed=*/9);
  for (const std::size_t k : parts) {
    batch.add("k=" + std::to_string(k), [&g, k](Rng&, SimOutcome& out) {
      Rng part_rng(9);
      const PartCollection pc = random_voronoi_partition(g, k, part_rng);
      const auto values = unit_values(pc);
      Rng r1(3), r2(3), r3(3);
      ShortcutPaOracle a(g, r1);
      BaselinePaOracle b(g, r2);
      NccPaOracle c(g, r3);
      a.aggregate_once(pc, values, AggregationMonoid::sum());
      b.aggregate_once(pc, values, AggregationMonoid::sum());
      c.aggregate_once(pc, values, AggregationMonoid::sum());
      out.results = {static_cast<double>(a.ledger().total_local()),
                     static_cast<double>(b.ledger().total_local()),
                     static_cast<double>(c.ledger().total_global()),
                     static_cast<double>(a.ledger().peak_congestion()),
                     static_cast<double>(b.ledger().peak_congestion())};
      out.ledger.absorb(a.ledger(), "shortcut");
      out.ledger.absorb(b.ledger(), "baseline");
      out.ledger.absorb(c.ledger(), "ncc");
    });
  }
  const WallTimer timer;
  batch.run(runtime.pool_ptr());

  Table table({"parts k", "shortcut rounds", "baseline rounds", "ncc rounds",
               "shortcut peak slot", "baseline peak slot"});
  std::vector<double> ks, fast, slow;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const SimOutcome& out = batch.outcomes()[i];
    table.add_row({Table::cell(parts[i]),
                   Table::cell(static_cast<std::size_t>(out.results[0])),
                   Table::cell(static_cast<std::size_t>(out.results[1])),
                   Table::cell(static_cast<std::size_t>(out.results[2])),
                   Table::cell(static_cast<std::size_t>(out.results[3])),
                   Table::cell(static_cast<std::size_t>(out.results[4]))});
    ks.push_back(static_cast<double>(parts[i]));
    fast.push_back(out.results[0]);
    slow.push_back(out.results[1]);
  }
  table.print(std::cout);
  print_fit("shortcut rounds vs k", fit_power(ks, fast));
  print_fit("baseline rounds vs k", fit_power(ks, slow));
  footnote(
      "Expected shape: baseline rounds grow ~linearly in k (every part "
      "broadcasts over the same global tree), the shortcut pipeline's "
      "k-exponent is much smaller (quality-driven), and NCC stays "
      "logarithmic-flat. This per-call profile is what compounds into the "
      "solver-level gaps of E8 and E10.");
  print_wall_clock(runtime, timer);
  return 0;
}
