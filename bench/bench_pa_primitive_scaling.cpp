// E18: the part-wise aggregation primitive's cost profile — rounds vs the
// number of parts k, for all three oracle models on one topology. This is
// the per-call view underlying E8/E10: the baseline pays Θ(D + k), the
// shortcut pipeline tracks the shortcut quality (≈ D for grid-likes,
// independent of k), and NCC pays O(ρ + log n) regardless.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/pa_oracle.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E18 / PA primitive",
         "aggregation rounds vs number of parts, per oracle model");

  const Graph g = make_grid(12, 12);
  std::cout << "topology: " << g.describe() << " (D = 22)\n\n";
  Table table({"parts k", "shortcut rounds", "baseline rounds", "ncc rounds",
               "shortcut peak slot", "baseline peak slot"});
  std::vector<double> ks, fast, slow;
  for (const std::size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    Rng part_rng(9);
    const PartCollection pc = random_voronoi_partition(g, k, part_rng);
    const auto values = unit_values(pc);
    Rng r1(3), r2(3), r3(3);
    ShortcutPaOracle a(g, r1);
    BaselinePaOracle b(g, r2);
    NccPaOracle c(g, r3);
    a.aggregate_once(pc, values, AggregationMonoid::sum());
    b.aggregate_once(pc, values, AggregationMonoid::sum());
    c.aggregate_once(pc, values, AggregationMonoid::sum());
    table.add_row({Table::cell(k), Table::cell(a.ledger().total_local()),
                   Table::cell(b.ledger().total_local()),
                   Table::cell(c.ledger().total_global()),
                   Table::cell(a.ledger().peak_congestion()),
                   Table::cell(b.ledger().peak_congestion())});
    ks.push_back(static_cast<double>(k));
    fast.push_back(static_cast<double>(a.ledger().total_local()));
    slow.push_back(static_cast<double>(b.ledger().total_local()));
  }
  table.print(std::cout);
  print_fit("shortcut rounds vs k", fit_power(ks, fast));
  print_fit("baseline rounds vs k", fit_power(ks, slow));
  footnote(
      "Expected shape: baseline rounds grow ~linearly in k (every part "
      "broadcasts over the same global tree), the shortcut pipeline's "
      "k-exponent is much smaller (quality-driven), and NCC stays "
      "logarithmic-flat. This per-call profile is what compounds into the "
      "solver-level gaps of E8 and E10.");
  return 0;
}
