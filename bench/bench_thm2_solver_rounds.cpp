// E8 (Theorem 2): the same Laplacian solver run against the shortcut PA
// oracle (this paper) vs the global-BFS-tree baseline oracle ([18]-style
// existential behaviour) across network families. The paper's claim is a
// per-oracle-call gap — Õ(SQ(G)) vs Θ̃(√n + D)-type costs — so we report
// both total rounds and rounds-per-PA-call, on a family where SQ ≪ √n
// (expander, D = O(log n)) and one where SQ = Θ̃(D) = Θ̃(√n) (grid).
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"

using namespace dls;
using namespace dls::bench;

namespace {

struct RunResult {
  std::uint64_t rounds = 0;
  std::uint64_t pa_calls = 0;
  bool converged = false;
  RecoveryCounters recovery;
  std::vector<LevelStats> levels;
};

RunResult run(const Graph& g, bool baseline, std::uint64_t seed) {
  Rng rng(seed);
  std::unique_ptr<CongestedPaOracle> oracle;
  if (baseline) {
    oracle = std::make_unique<BaselinePaOracle>(g, rng);
  } else {
    oracle = std::make_unique<ShortcutPaOracle>(g, rng);
  }
  LaplacianSolverOptions options;
  options.tolerance = 1e-6;
  // Fixed-depth chains across the sweep: every size runs top level →
  // sparsified level → Cholesky base, so the only variable is the per-call
  // oracle cost (the paper's subject), not the chain shape.
  options.base_size = 24;
  options.max_levels = 3;
  options.inner_iterations = 4;
  options.offtree_fraction = 0.3;
  DistributedLaplacianSolver solver(*oracle, rng, options);
  const LaplacianSolveReport report = solver.solve(random_rhs(g.num_nodes(), rng));
  return {report.local_rounds, report.pa_calls, report.converged,
          report.recovery, solver.level_stats()};
}

}  // namespace

int main() {
  banner("E8 / Theorem 2",
         "solver rounds: shortcut oracle vs existential baseline oracle");

  struct Family {
    const char* name;
    std::vector<Graph> graphs;
  };
  Rng gen_rng(13);
  std::vector<Family> families;
  families.push_back({"expander (d=4)",
                      {make_random_regular(64, 4, gen_rng),
                       make_random_regular(128, 4, gen_rng),
                       make_random_regular(256, 4, gen_rng),
                       make_random_regular(512, 4, gen_rng)}});
  families.push_back({"grid",
                      {make_grid(8, 8), make_grid(12, 12), make_grid(16, 16),
                       make_grid(20, 20)}});

  for (const Family& family : families) {
    std::cout << family.name << ":\n";
    Table table({"n", "shortcut rounds", "baseline rounds", "speedup",
                 "shortcut rounds/call", "baseline rounds/call", "conv",
                 "recovery"});
    std::vector<double> xs, fast_ys, slow_ys;
    for (const Graph& g : family.graphs) {
      const RunResult fast = run(g, false, 42);
      const RunResult slow = run(g, true, 42);
      // Clean oracles: both cells must stay "-". A recovery entry here means
      // the resilience ladder engaged without injected faults — a regression
      // against the clean-path determinism contract.
      const std::string recovery =
          recovery_cell(fast.recovery) + "/" + recovery_cell(slow.recovery);
      table.add_row(
          {Table::cell(g.num_nodes()), Table::cell(fast.rounds),
           Table::cell(slow.rounds),
           Table::cell(static_cast<double>(slow.rounds) /
                       static_cast<double>(std::max<std::uint64_t>(fast.rounds, 1))),
           Table::cell(static_cast<double>(fast.rounds) /
                       static_cast<double>(std::max<std::uint64_t>(fast.pa_calls, 1))),
           Table::cell(static_cast<double>(slow.rounds) /
                       static_cast<double>(std::max<std::uint64_t>(slow.pa_calls, 1))),
           (fast.converged && slow.converged) ? "both" : "CHECK", recovery});
      xs.push_back(static_cast<double>(g.num_nodes()));
      fast_ys.push_back(static_cast<double>(fast.rounds));
      slow_ys.push_back(static_cast<double>(slow.rounds));
      const std::string size = std::to_string(g.num_nodes());
      print_level_recovery(std::string(family.name) + " n=" + size +
                               " shortcut recovery",
                           fast.levels);
      print_level_recovery(std::string(family.name) + " n=" + size +
                               " baseline recovery",
                           slow.levels);
    }
    table.print(std::cout);
    print_fit("shortcut rounds vs n", fit_power(xs, fast_ys));
    print_fit("baseline rounds vs n", fit_power(xs, slow_ys));
    std::cout << "\n";
  }
  footnote(
      "Expected shape: on the expander family the shortcut oracle wins "
      "clearly and its rounds-per-call stay ~polylog while the baseline's "
      "grow with n (it pays Theta(D + #parts) per call). On grids "
      "SQ = Theta~(D) = Theta~(sqrt(n)), so both scale similarly and the "
      "gap narrows — matching the theory's prediction that the win is "
      "topology-dependent (universal optimality).");
  return 0;
}
