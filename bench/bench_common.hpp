// Shared helpers for the experiment drivers in bench/. Each binary
// regenerates one experiment from DESIGN.md §4 and prints a self-describing
// table; EXPERIMENTS.md records the expected shapes next to measured runs.
#pragma once

#include <cmath>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/vector_ops.hpp"
#include "shortcuts/partition.hpp"
#include "sim/round_ledger.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dls::bench {

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n## " << id << " — " << claim << "\n\n";
}

inline void footnote(const std::string& text) { std::cout << "\n" << text << "\n"; }

/// Uniform random mean-zero rhs.
inline Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2.0 - 1.0;
  project_mean_zero(b);
  return b;
}

/// Unit values for a part collection (PA cost is value-oblivious).
inline std::vector<std::vector<double>> unit_values(const PartCollection& pc) {
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  return values;
}

inline void print_fit(const char* label, const PowerFit& fit) {
  std::cout << label << ": y ~ " << fit.constant << " * x^" << fit.exponent
            << " (r2 = " << fit.r2 << ")\n";
}

/// Per-phase congestion breakdown of a ledger: one line per entry that was
/// simulated at message level (entries with zero messages were charge-only
/// and are skipped).
inline void print_congestion(const std::string& heading,
                             const RoundLedger& ledger) {
  std::cout << "\n" << heading << " (phase: rounds, messages, "
            << "peak slot msgs, peak round msgs)\n";
  for (const LedgerEntry& e : ledger.entries()) {
    if (e.congestion.messages == 0) continue;
    std::cout << "  " << e.label << ": "
              << (e.local_rounds > 0 ? e.local_rounds : e.global_rounds) << ", "
              << e.congestion.messages << ", "
              << e.congestion.peak_slot_messages << ", "
              << e.congestion.peak_round_messages << "\n";
  }
  std::cout << "  overall peak slot congestion: " << ledger.peak_congestion()
            << " (total messages: " << ledger.total_messages() << ")\n";
}

}  // namespace dls::bench
