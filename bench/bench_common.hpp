// Shared helpers for the experiment drivers in bench/. Each binary
// regenerates one experiment from DESIGN.md §4 and prints a self-describing
// table; EXPERIMENTS.md records the expected shapes next to measured runs.
#pragma once

#include <chrono>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "resilience/recovery.hpp"
#include "resilience/solve_supervisor.hpp"
#include "shortcuts/partition.hpp"
#include "sim/round_ledger.hpp"
#include "sim/sim_batch.hpp"
#include "util/flags.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace dls::bench {

/// `--trace PATH` session: installs an ambient tracer for the rest of the
/// bench run and writes the Chrome trace-event JSON (load in Perfetto /
/// chrome://tracing; docs/OBSERVABILITY.md) on teardown, when the runtime
/// goes out of scope at the end of main. Span cursors tick in simulated
/// rounds, so the emitted trace is as deterministic as the bench's tables.
struct TraceSession {
  explicit TraceSession(std::string out_path)
      : path(std::move(out_path)),
        tracer(std::make_unique<Tracer>()),
        scope(std::make_unique<TraceScope>(tracer.get())) {}
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;
  ~TraceSession() {
    scope.reset();  // uninstall before export: the stream must be final
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot open trace output: " << path << "\n";
      return;
    }
    out << chrome_trace_json(*tracer);
    std::cout << "wrote " << tracer->spans().size() << " spans to " << path
              << "\n";
  }

  std::string path;
  std::unique_ptr<Tracer> tracer;
  std::unique_ptr<TraceScope> scope;
};

/// Shared `--threads N` runtime for the experiment drivers. All simulation
/// numbers a bench reports are thread-count invariant (the SimBatch
/// determinism contract); the thread count only moves wall-clock time.
struct BenchRuntime {
  std::size_t threads = 1;
  std::unique_ptr<ThreadPool> pool;  // null when threads == 1
  /// `--supervisor=off|retry|degrade`: whether drivers that solve through a
  /// PA oracle wrap it in the recovery ladder (resilience/solve_supervisor).
  SupervisorMode supervisor = SupervisorMode::kOff;
  /// `--trace PATH`: hierarchical span trace of the whole run (null when the
  /// flag is absent — the default path stays untraced and bit-identical).
  std::unique_ptr<TraceSession> trace;
  /// `--cache`: drivers that serve repeated solves route them through a
  /// warm SolverCache entry (laplacian/solver_cache.hpp) instead of a bare
  /// per-run stack. Off by default: the uncached path and its golden traces
  /// are untouched.
  bool cache = false;

  /// The pool to hand to SimBatch / solver options (null ⇒ serial).
  ThreadPool* pool_ptr() const { return pool.get(); }
};

/// Parses `--threads N` (default 1; 0 means all hardware threads),
/// `--supervisor MODE` (default off) and `--trace PATH` (default off) and
/// spins up the worker pool. Unknown flags still error via Flags.
inline BenchRuntime bench_runtime(int argc, const char* const* argv) {
  const Flags flags(argc, argv);
  BenchRuntime runtime;
  std::int64_t want = flags.get_int("threads", 1);
  if (want == 0) want = static_cast<std::int64_t>(ThreadPool::hardware_threads());
  runtime.threads = want < 1 ? 1 : static_cast<std::size_t>(want);
  if (runtime.threads > 1) {
    runtime.pool = std::make_unique<ThreadPool>(runtime.threads);
  }
  runtime.supervisor = supervisor_mode_from_string(flags.get("supervisor", "off"));
  runtime.cache = flags.get_bool("cache", false);
  const std::string trace_path = flags.get("trace", "");
  if (!trace_path.empty()) {
    runtime.trace = std::make_unique<TraceSession>(trace_path);
  }
  return runtime;
}

/// Wraps `primary` in the escalation ladder when the runtime asks for it
/// (null when `--supervisor=off`: callers solve against the bare oracle, so
/// the default bench path stays bit-identical to pre-resilience traces).
inline std::unique_ptr<SupervisedPaOracle> wrap_supervised(
    CongestedPaOracle& primary, const BenchRuntime& runtime) {
  if (runtime.supervisor == SupervisorMode::kOff) return nullptr;
  SupervisorConfig config;
  config.mode = runtime.supervisor;
  return std::make_unique<SupervisedPaOracle>(primary, config);
}

/// Wall-clock stopwatch for reporting batch speedups.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_wall_clock(const BenchRuntime& runtime, const WallTimer& t) {
  std::cout << "\nwall clock: " << t.seconds() << " s with " << runtime.threads
            << " thread(s) — reported rounds are thread-count invariant\n";
}

/// Flat metric sink for benches that support `--json PATH`. Keys are
/// free-form slash paths (e.g. "grid/b16/t4/speedup"); values are doubles
/// written with full round-trip precision. The file layout is deliberately
/// trivial — `{"bench": ..., "metrics": {key: value, ...}}` with keys sorted —
/// so scripts/bench_compare.py can diff two runs without a JSON library
/// per-metric schema. Deterministic metrics (simulated rounds) diff exactly;
/// wall-clock metrics diff within a noise threshold.
class JsonMetrics {
 public:
  explicit JsonMetrics(std::string bench_name) : name_(std::move(bench_name)) {}

  void set(const std::string& key, double value) { metrics_[key] = value; }

  /// No-op when `path` is empty (the bench was run without `--json`).
  void write(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot open json output: " + path);
    out << "{\n  \"bench\": \"" << name_ << "\",\n  \"metrics\": {\n";
    out << std::setprecision(17);
    std::size_t i = 0;
    for (const auto& [key, value] : metrics_) {
      out << "    \"" << key << "\": " << value;
      out << (++i < metrics_.size() ? ",\n" : "\n");
    }
    out << "  }\n}\n";
    std::cout << "\nwrote " << metrics_.size() << " metrics to " << path << "\n";
  }

 private:
  std::string name_;
  std::map<std::string, double> metrics_;  // sorted ⇒ deterministic output
};

inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "\n## " << id << " — " << claim << "\n\n";
}

inline void footnote(const std::string& text) { std::cout << "\n" << text << "\n"; }

/// Uniform random mean-zero rhs.
inline Vec random_rhs(std::size_t n, Rng& rng) {
  Vec b(n);
  for (double& v : b) v = rng.next_double() * 2.0 - 1.0;
  project_mean_zero(b);
  return b;
}

/// Unit values for a part collection (PA cost is value-oblivious).
inline std::vector<std::vector<double>> unit_values(const PartCollection& pc) {
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  return values;
}

/// Compact table cell for a solve's recovery trace: "-" on clean solves,
/// otherwise the engaged counters, e.g. "3r 1b" or "2r 1b 1d 2c".
inline std::string recovery_cell(const RecoveryCounters& c) {
  if (!c.any()) return "-";
  std::string out;
  const auto append = [&out](std::size_t n, char tag) {
    if (n == 0) return;
    if (!out.empty()) out += ' ';
    out += std::to_string(n);
    out += tag;
  };
  append(c.retries, 'r');
  append(c.rebuilds, 'b');
  append(c.degradations, 'd');
  append(c.checkpoints_restored, 'c');
  append(c.watchdog_restarts + c.watchdog_rebounds, 'w');
  return out;
}

/// Per-level recovery attribution (LevelStats counters); prints one line per
/// chain level that actually recovered and stays silent on clean runs, so
/// existing bench output is unchanged unless the ladder engaged.
template <typename LevelStatsVec>
void print_level_recovery(const std::string& heading,
                          const LevelStatsVec& stats) {
  bool printed_heading = false;
  for (std::size_t level = 0; level < stats.size(); ++level) {
    const auto& s = stats[level];
    if (s.pa_retries + s.pa_rebuilds + s.pa_degradations +
            s.checkpoints_restored ==
        0) {
      continue;
    }
    if (!printed_heading) {
      std::cout << heading << " (level: retries, rebuilds, degradations, "
                << "checkpoint restores)\n";
      printed_heading = true;
    }
    std::cout << "  level " << level << (s.is_base ? " (base)" : "") << ": "
              << s.pa_retries << ", " << s.pa_rebuilds << ", "
              << s.pa_degradations << ", " << s.checkpoints_restored << "\n";
  }
}

inline void print_fit(const char* label, const PowerFit& fit) {
  std::cout << label << ": y ~ " << fit.constant << " * x^" << fit.exponent
            << " (r2 = " << fit.r2 << ")\n";
}

/// Per-phase congestion breakdown of a ledger: one line per entry that was
/// simulated at message level (entries with zero messages were charge-only
/// and are skipped).
inline void print_congestion(const std::string& heading,
                             const RoundLedger& ledger) {
  std::cout << "\n" << heading << " (phase: rounds, messages, "
            << "peak slot msgs, peak round msgs)\n";
  for (const LedgerEntry& e : ledger.entries()) {
    if (e.congestion.messages == 0) continue;
    std::cout << "  " << e.label << ": "
              << (e.local_rounds > 0 ? e.local_rounds : e.global_rounds) << ", "
              << e.congestion.messages << ", "
              << e.congestion.peak_slot_messages << ", "
              << e.congestion.peak_round_messages << "\n";
  }
  std::cout << "  overall peak slot congestion: " << ledger.peak_congestion()
            << " (total messages: " << ledger.total_messages() << ")\n";
}

}  // namespace dls::bench
