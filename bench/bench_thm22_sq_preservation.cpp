// E4 (Theorem 22): SQ(Ĝ_ρ) = Õ(SQ(G)) — shortcut quality survives layering
// up to polylog factors, in stark contrast to the ρ-linear growth of
// treewidth (E2) and the √n blow-up of minor density (E3). We compare the
// empirical SQ estimates (DESIGN.md §2: sampled adversarial partitions +
// best constructed shortcut) of G and Ĝ_ρ across families.
#include "bench_common.hpp"
#include "congested_pa/layered_graph.hpp"
#include "graph/generators.hpp"
#include "shortcuts/quality_estimator.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E4 / Theorem 22",
         "SQ estimate of the layered graph stays within polylog of the base");

  Rng rng(3);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 8x8", make_grid(8, 8)});
  cases.push_back({"torus 8x8", make_torus(8, 8)});
  cases.push_back({"expander n=64 d=4", make_random_regular(64, 4, rng)});
  cases.push_back({"binary tree n=63", make_balanced_binary_tree(63)});

  Table table({"family", "SQ~(G)", "rho", "SQ~(G_rho)", "ratio",
               "tw-style bound rho*SQ~"});
  for (const Case& c : cases) {
    const SqEstimate base = estimate_shortcut_quality(c.graph, rng);
    for (std::size_t rho : {2u, 4u}) {
      const LayeredGraph layered(c.graph, rho);
      const SqEstimate lifted = estimate_shortcut_quality(layered.graph(), rng);
      table.add_row(
          {c.name, Table::cell(base.quality), Table::cell(rho),
           Table::cell(lifted.quality),
           Table::cell(static_cast<double>(lifted.quality) /
                       static_cast<double>(std::max<std::size_t>(base.quality, 1))),
           Table::cell(rho * base.quality)});
    }
  }
  table.print(std::cout);
  footnote(
      "Expected shape: the ratio column stays O(polylog) — roughly flat in "
      "rho — and well below the rho*SQ growth a treewidth-style argument "
      "(Lemma 19) would predict. This is the paper's main technical theorem.");
  return 0;
}
