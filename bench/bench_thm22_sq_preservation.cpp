// E4 (Theorem 22): SQ(Ĝ_ρ) = Õ(SQ(G)) — shortcut quality survives layering
// up to polylog factors, in stark contrast to the ρ-linear growth of
// treewidth (E2) and the √n blow-up of minor density (E3). We compare the
// empirical SQ estimates (DESIGN.md §2: sampled adversarial partitions +
// best constructed shortcut) of G and Ĝ_ρ across families.
//
// Every estimate — the base graph's and each layered lift's — is one
// SimBatch scenario; `--threads N` runs the repeated estimation trials
// concurrently with bit-identical reported qualities.
#include "bench_common.hpp"
#include "congested_pa/layered_graph.hpp"
#include "graph/generators.hpp"
#include "shortcuts/quality_estimator.hpp"

using namespace dls;
using namespace dls::bench;

int main(int argc, char** argv) {
  const BenchRuntime runtime = bench_runtime(argc, argv);
  banner("E4 / Theorem 22",
         "SQ estimate of the layered graph stays within polylog of the base");

  Rng rng(3);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 8x8", make_grid(8, 8)});
  cases.push_back({"torus 8x8", make_torus(8, 8)});
  cases.push_back({"expander n=64 d=4", make_random_regular(64, 4, rng)});
  cases.push_back({"binary tree n=63", make_balanced_binary_tree(63)});
  const std::vector<std::size_t> rhos{2, 4};

  // Scenario layout per case: [base estimate, lift rho=2, lift rho=4].
  // The layered graphs are deterministic lifts, built inside the scenario.
  SimBatch batch(/*root_seed=*/3);
  for (const Case& c : cases) {
    batch.add(std::string(c.name) + " base",
              [&c](Rng& scenario_rng, SimOutcome& out) {
                const SqEstimate e = estimate_shortcut_quality(c.graph,
                                                               scenario_rng);
                out.results = {static_cast<double>(e.quality)};
              });
    for (std::size_t rho : rhos) {
      batch.add(std::string(c.name) + " rho=" + std::to_string(rho),
                [&c, rho](Rng& scenario_rng, SimOutcome& out) {
                  const LayeredGraph layered(c.graph, rho);
                  const SqEstimate e =
                      estimate_shortcut_quality(layered.graph(), scenario_rng);
                  out.results = {static_cast<double>(e.quality)};
                });
    }
  }
  const WallTimer timer;
  batch.run(runtime.pool_ptr());

  Table table({"family", "SQ~(G)", "rho", "SQ~(G_rho)", "ratio",
               "tw-style bound rho*SQ~"});
  std::size_t scenario = 0;
  for (const Case& c : cases) {
    const auto base =
        static_cast<std::size_t>(batch.outcomes()[scenario++].results[0]);
    for (std::size_t rho : rhos) {
      const auto lifted =
          static_cast<std::size_t>(batch.outcomes()[scenario++].results[0]);
      table.add_row(
          {c.name, Table::cell(base), Table::cell(rho), Table::cell(lifted),
           Table::cell(static_cast<double>(lifted) /
                       static_cast<double>(std::max<std::size_t>(base, 1))),
           Table::cell(rho * base)});
    }
  }
  table.print(std::cout);
  footnote(
      "Expected shape: the ratio column stays O(polylog) — roughly flat in "
      "rho — and well below the rho*SQ growth a treewidth-style argument "
      "(Lemma 19) would predict. This is the paper's main technical theorem.");
  print_wall_clock(runtime, timer);
  return 0;
}
