// Resilience overhead: what the escalation ladder costs in simulated rounds.
//
// A fault-free supervised solve is bit-identical to the unsupervised one
// (the clean path never touches the ladder), so the interesting numbers are
// what recovery costs once faults DO wedge PA calls: round inflation vs the
// fault-free reference, the rounds charged to failed attempts and backoff
// ("rounds lost"), which ladder rung the solve reached, and whether the
// returned x still matches the reference bitwise (it must whenever the solve
// completes — PA aggregates are value-exact at every rung). One row per
// (graph family × fault mix × supervisor mode); `--supervisor` narrows the
// mode sweep to a single mode.
#include <memory>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"
#include "sim/fault_injection.hpp"
#include "util/assert.hpp"
#include "verify/certified_solve.hpp"

using namespace dls;
using namespace dls::bench;

namespace {

struct Mix {
  const char* name;
  FaultConfig config;
};

// Tight round_limit relative to the faulted phase costs on these small
// graphs, so some measures genuinely wedge and abort (the chaos sweep in
// tests/test_resilience.cpp uses the same mixes for the same reason).
std::vector<Mix> mixes() {
  std::vector<Mix> out;
  {
    FaultConfig c;
    c.drop_rate = 0.5;
    c.round_limit = 20;
    out.push_back({"droppy", c});
  }
  {
    FaultConfig c;
    c.drop_rate = 0.2;
    c.crash_rate = 0.05;
    c.max_crash_len = 4;
    c.round_limit = 20;
    out.push_back({"crashy", c});
  }
  return out;
}

LaplacianSolverOptions chain_options() {
  LaplacianSolverOptions options;
  options.base_size = 12;  // force a real multi-level chain on small graphs
  options.tolerance = 1e-6;
  return options;
}

Vec messy_rhs(std::size_t n) {
  Vec b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<double>((i * 2654435761u) % 97);
  }
  project_mean_zero(b);
  return b;
}

struct Outcome {
  std::uint64_t rounds = 0;
  RecoveryCounters recovery;
  EscalationTier tier = EscalationTier::kNone;
  bool converged = false;
  bool degraded = false;
  bool bit_identical = false;
  double wall_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const BenchRuntime runtime = bench_runtime(argc, argv);
  const WallTimer timer;
  banner("resilience overhead",
         "recovery ladder: round cost per fault mix and supervisor mode");

  struct Family {
    const char* name;
    Graph g;
  };
  Rng build_rng(0xFA111);
  std::vector<Family> families;
  families.push_back({"grid 5x5", make_grid(5, 5)});
  families.push_back({"3-regular n=24", make_random_regular(24, 3, build_rng)});
  families.push_back({"path 24", make_path(24)});

  std::vector<SupervisorMode> modes;
  if (runtime.supervisor == SupervisorMode::kOff) {
    modes = {SupervisorMode::kRetry, SupervisorMode::kDegrade};
  } else {
    modes = {runtime.supervisor};
  }

  Table table({"graph", "fault mix", "mode", "clean rounds", "faulty rounds",
               "inflation", "rounds lost", "recovery", "tier", "result",
               "wall ms"});
  std::vector<std::pair<std::string, std::vector<LevelStats>>> level_traces;
  for (const Family& family : families) {
    const Vec b = messy_rhs(family.g.num_nodes());
    const std::uint64_t seed = 0x51EE;

    // Fault-free reference: the bitwise target every completed supervised
    // solve must hit, and the denominator of the inflation column.
    Rng clean_oracle_rng(seed);
    ShortcutPaOracle clean_oracle(family.g, clean_oracle_rng);
    Rng clean_solver_rng(seed ^ 0x50F7);
    DistributedLaplacianSolver clean(clean_oracle, clean_solver_rng,
                                     chain_options());
    const LaplacianSolveReport want = clean.solve(b);
    if (!want.converged) {
      std::cerr << "FATAL: fault-free reference did not converge on "
                << family.name << "\n";
      return 1;
    }

    for (const Mix& mix : mixes()) {
      for (SupervisorMode mode : modes) {
        FaultPlan plan(seed ^ 0xFA57, mix.config);
        Rng oracle_rng(seed);
        ShortcutPaOracle primary(family.g, oracle_rng);
        primary.set_fault_plan(&plan);
        SupervisorConfig config;
        config.mode = mode;
        SupervisedPaOracle supervised(primary, config);
        Rng solver_rng(seed ^ 0x50F7);
        DistributedLaplacianSolver solver(supervised, solver_rng,
                                          chain_options());

        Outcome out;
        const WallTimer solve_timer;
        const LaplacianSolveReport report = solver.solve(b);
        out.wall_ms = solve_timer.seconds() * 1e3;
        out.rounds = report.local_rounds;
        out.recovery = report.recovery;
        out.tier = supervised.tier();
        out.converged = report.converged;
        out.degraded = report.degraded.has_value();
        out.bit_identical = report.x == want.x;

        const char* result = out.degraded   ? "degraded"
                             : !out.converged ? "CHECK"
                             : out.bit_identical ? "bit-identical"
                                                 : "DIVERGED";
        table.add_row(
            {family.name, mix.name, to_string(mode),
             Table::cell(want.local_rounds), Table::cell(out.rounds),
             Table::cell(static_cast<double>(out.rounds) /
                         static_cast<double>(
                             std::max<std::uint64_t>(want.local_rounds, 1))),
             Table::cell(out.recovery.rounds_lost),
             recovery_cell(out.recovery), to_string(out.tier), result,
             Table::cell(out.wall_ms)});
        level_traces.emplace_back(std::string(family.name) + " / " + mix.name +
                                      " / " + to_string(mode),
                                  solver.level_stats());
      }
    }
  }
  table.print(std::cout);
  for (const auto& [heading, stats] : level_traces) {
    print_level_recovery("\n" + heading, stats);
  }

  // --- Certificate-verification overhead: what the end-to-end certificate
  // (src/verify/certified_solve.hpp) costs on a fault-free solve substrate,
  // with the delivery hop clean, silently corrupting, or corrupting under
  // payload integrity. Every row must hand the client a bit-identical x —
  // the DLS_REQUIREs below are the bench's own acceptance gate, so a
  // certificate regression fails the binary, not just a table cell.
  banner("certified solves",
         "residual + checksum certificate: overhead and corruption recovery");
  struct DeliveryMix {
    const char* name;
    double corrupt_rate;
    bool integrity;
  };
  const DeliveryMix delivery_mixes[] = {
      {"clean hop", 0.0, false},
      {"corrupt 10%", 0.10, false},
      {"corrupt 10% + integrity", 0.10, true},
  };
  Table ctable({"graph", "delivery", "solver rounds", "total rounds",
                "verify rounds", "attempts", "rejected", "retransmits",
                "wall ms"});
  for (std::size_t fam = 0; fam < families.size(); ++fam) {
    const Family& family = families[fam];
    const Vec b = messy_rhs(family.g.num_nodes());
    const std::uint64_t seed = 0x51EE;

    // Uncertified reference: the bitwise target every accepted certificate
    // must return, and the "solver rounds" baseline of the overhead columns.
    Rng ref_oracle_rng(seed);
    ShortcutPaOracle ref_oracle(family.g, ref_oracle_rng);
    Rng ref_solver_rng(seed ^ 0x50F7);
    DistributedLaplacianSolver reference(ref_oracle, ref_solver_rng,
                                         chain_options());
    const LaplacianSolveReport want = reference.solve(b);

    for (const DeliveryMix& mix : delivery_mixes) {
      Rng oracle_rng(seed);
      ShortcutPaOracle oracle(family.g, oracle_rng);
      Rng solver_rng(seed ^ 0x50F7);
      DistributedLaplacianSolver solver(oracle, solver_rng, chain_options());

      FaultConfig fc;
      fc.corrupt_rate = mix.corrupt_rate;
      std::unique_ptr<FaultPlan> plan;
      CertifiedSolveOptions copts;
      copts.resolve_budget = 8;
      copts.delivery_integrity = mix.integrity;
      if (mix.corrupt_rate > 0.0) {
        // Per-family plan seed: the delivery fates hash (round, coordinate)
        // under the plan seed, so without this every family would consult
        // the exact same corruption schedule.
        plan = std::make_unique<FaultPlan>(seed ^ (0xCE47 + 0x101 * fam), fc);
        copts.delivery_faults = plan.get();
      }
      CertifiedSolve certified(solver, copts);

      const WallTimer solve_timer;
      const CertifiedSolveReport report = certified.solve(b);
      const double wall_ms = solve_timer.seconds() * 1e3;

      DLS_REQUIRE(!report.degraded.has_value(),
                  "certified solve must certify within its resolve budget");
      DLS_REQUIRE(report.certificate.accepted,
                  "returned certificate must be accepted");
      DLS_REQUIRE(report.solve.x == want.x,
                  "certified x must be bit-identical to the uncertified "
                  "reference");

      std::uint64_t verify_rounds = 0;
      for (const LedgerEntry& e : oracle.ledger().entries()) {
        if (e.label.rfind("verify/", 0) == 0) {
          verify_rounds += e.local_rounds + e.global_rounds;
        }
      }
      ctable.add_row(
          {family.name, mix.name, Table::cell(want.local_rounds),
           Table::cell(oracle.ledger().total_local()),
           Table::cell(verify_rounds), Table::cell(report.attempts),
           Table::cell(report.rejected.size()),
           Table::cell(report.certificate.delivery_retransmissions),
           Table::cell(wall_ms)});
    }
  }
  ctable.print(std::cout);
  footnote(
      "verify rounds: ledger entries under verify/ (delivery hop, recomputed "
      "residual certificate, solution checksum exchange). Corrupt rows "
      "without integrity re-solve until a delivery epoch certifies clean; "
      "with integrity the corrupted words are retransmitted in-hop and the "
      "first attempt certifies. Either way the client's x is bit-identical "
      "to the uncertified reference — enforced above, not just reported.");
  print_wall_clock(runtime, timer);
  footnote(
      "Expected shape: retry-tier recoveries cost a small constant factor "
      "(failed attempts + jittered backoff); degrade-tier rows pay the "
      "baseline oracle's Theta(D + batch)-type rounds for the rest of the "
      "solve — availability bought with the round complexity the paper "
      "improves on. Every completed row must read bit-identical: the ladder "
      "re-runs value-exact PA folds, it never changes results.");
  return 0;
}
