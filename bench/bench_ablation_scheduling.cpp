// E14 (ablation): contention-resolution policy in the message-level PA
// engine — random per-tree priorities (the random-delay scheduling of [19],
// our default) vs FIFO vs a fixed part order. Measured on instances with
// heavy shared-edge contention.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "shortcuts/partwise_aggregation.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E14 / ablation", "scheduling policy in the PA engine");

  // Contention only appears when the H_i genuinely share edges, so each
  // instance forces every part onto one global BFS tree (the baseline
  // oracle's shortcut shape): edge load = #parts near the root.
  Rng rng(43);
  struct Case {
    const char* name;
    Graph graph;
    PartCollection parts;
  };
  std::vector<Case> cases;
  {
    Graph g = make_grid(10, 10);
    PartCollection pc = grid_row_partition(10, 10);
    cases.push_back({"grid 10x10, 10 row parts", std::move(g), std::move(pc)});
  }
  {
    Graph g = make_random_regular(100, 4, rng);
    PartCollection pc = random_voronoi_partition(g, 24, rng);
    cases.push_back({"expander n=100, 24 parts", std::move(g), std::move(pc)});
  }
  {
    Graph g = make_cycle(60);
    PartCollection pc;
    for (NodeId i = 0; i < 30; ++i) pc.parts.push_back({i, (i + 1) % 60});
    cases.push_back({"cycle n=60, 30 adjacent pairs", std::move(g),
                     std::move(pc)});
  }

  Table table({"instance", "policy", "rounds", "convergecast", "broadcast",
               "max edge load"});
  for (const Case& c : cases) {
    const auto values = unit_values(c.parts);
    // Shared global-tree shortcut: every part's H_i is the same BFS tree.
    Rng tree_rng(13);
    const RootedSpanningTree tree = centered_bfs_tree(c.graph, tree_rng);
    std::vector<EdgeId> tree_edges;
    for (NodeId v = 0; v < c.graph.num_nodes(); ++v) {
      if (tree.parent_edge[v] != kInvalidEdge) {
        tree_edges.push_back(tree.parent_edge[v]);
      }
    }
    Shortcut shared;
    shared.h_edges.assign(c.parts.num_parts(), tree_edges);
    for (const auto [policy, name] :
         {std::pair{SchedulingPolicy::kRandomPriority, "random-delay"},
          std::pair{SchedulingPolicy::kFifo, "fifo"},
          std::pair{SchedulingPolicy::kPartOrdered, "part-ordered"}}) {
      Rng run_rng(7);
      const auto outcome = solve_partwise_aggregation(
          c.graph, c.parts, values, AggregationMonoid::sum(), shared, run_rng,
          policy);
      table.add_row({c.name, name, Table::cell(outcome.schedule.total_rounds),
                     Table::cell(outcome.schedule.convergecast_rounds),
                     Table::cell(outcome.schedule.broadcast_rounds),
                     Table::cell(outcome.schedule.max_edge_load)});
    }
  }
  table.print(std::cout);
  footnote(
      "Expected shape: all policies finish within the O(congestion + "
      "dilation) envelope (compare rounds with max edge load + depth); "
      "random-delay edges out the deterministic policies where many parts "
      "contend on shared tree edges, matching the role of [19]-style "
      "random-delay scheduling in Proposition 6.");
  return 0;
}
