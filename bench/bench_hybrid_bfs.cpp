// E22: the raw power of the global channel — landmark-overlay BFS in HYBRID
// vs flooding in pure CONGEST, on high-diameter topologies. This is the
// primitive-level view of why Theorem 3 can ignore the topology: local
// rounds scale with ball radii (n / #landmarks), not with D.
#include "bench_common.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sim/hybrid.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E22 / HYBRID primitive",
         "landmark BFS rounds vs pure-CONGEST flooding");

  std::cout << "cycle sweep (D = n/2):\n";
  Table table({"n", "landmarks", "ball radius", "hybrid rounds",
               "congest rounds", "speedup"});
  for (const std::size_t n : {100u, 200u, 400u, 800u}) {
    Rng rng(91);
    const Graph g = make_cycle(n);
    const HybridBfsResult result = hybrid_bfs_with_landmarks(g, 0, rng);
    table.add_row(
        {Table::cell(n), Table::cell(result.landmarks),
         Table::cell(static_cast<std::size_t>(result.ball_radius)),
         Table::cell(result.rounds), Table::cell(result.pure_congest_rounds),
         Table::cell(static_cast<double>(result.pure_congest_rounds) /
                     static_cast<double>(std::max<std::uint64_t>(result.rounds,
                                                                 1)))});
  }
  table.print(std::cout);

  std::cout << "\naccuracy check (grid 12x12):\n";
  {
    Rng rng(92);
    const Graph g = make_grid(12, 12);
    const HybridBfsResult result = hybrid_bfs_with_landmarks(g, 0, rng);
    const BfsResult exact = bfs(g, 0);
    double worst = 1.0, sum_ratio = 0.0;
    std::size_t counted = 0;
    for (NodeId v = 1; v < g.num_nodes(); ++v) {
      const double ratio = static_cast<double>(result.approx_dist[v]) /
                           static_cast<double>(exact.dist[v]);
      worst = std::max(worst, ratio);
      sum_ratio += ratio;
      ++counted;
    }
    std::cout << "  mean stretch " << sum_ratio / static_cast<double>(counted)
              << ", worst stretch " << worst << ", ball radius "
              << result.ball_radius << "\n";
  }
  footnote(
      "Expected shape: speedup grows with n on the cycle — hybrid rounds "
      "track 2R + O~(1) with R ~ n / (2 sqrt n) = sqrt(n)/2 while flooding "
      "pays D = n/2 — and the distance estimates stay within a small "
      "stretch. The same global-channel effect gives the PA oracle its "
      "topology-independent O(rho + log n) cost (Lemma 26, E7, E10).");
  return 0;
}
