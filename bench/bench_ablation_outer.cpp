// E21 (ablation): outer iteration scheme — flexible PCG (adaptive; the
// default) vs preconditioned Chebyshev with power-iteration eigenbounds
// (the scheme the KMP/[18] analyses are written for). Under *inexact* inner
// solves the preconditioner is a slightly nonlinear, iteration-varying
// operator: PCG adapts its search directions, while Chebyshev commits to a
// fixed spectral window padded for safety and pays for the padding.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E21 / ablation", "outer iteration: flexible PCG vs Chebyshev");

  Rng gen(81);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 12x12", make_grid(12, 12)});
  cases.push_back({"expander n=144", make_random_regular(144, 4, gen)});
  cases.push_back({"weighted grid 10x10", make_weighted_grid(10, 10, gen)});

  Table table({"topology", "outer", "iterations", "rounds", "residual",
               "converged"});
  for (const Case& c : cases) {
    for (int mode = 0; mode < 2; ++mode) {
      Rng rng(3);
      ShortcutPaOracle oracle(c.graph, rng);
      LaplacianSolverOptions options;
      options.tolerance = 1e-8;
      options.base_size = 48;
      options.outer = mode == 0 ? OuterIteration::kFlexiblePcg
                                : OuterIteration::kChebyshev;
      DistributedLaplacianSolver solver(oracle, rng, options);
      const LaplacianSolveReport report =
          solver.solve(random_rhs(c.graph.num_nodes(), rng));
      table.add_row({c.name, mode == 0 ? "flexible PCG" : "chebyshev",
                     Table::cell(report.outer_iterations),
                     Table::cell(report.local_rounds),
                     Table::cell(report.relative_residual, 10),
                     report.converged ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  footnote(
      "Expected shape: both schemes converge; flexible PCG needs several "
      "times fewer iterations because it adapts to the effective spectrum "
      "of the inexact preconditioner, whereas Chebyshev's fixed padded "
      "window wastes iterations — the practical reason the library defaults "
      "to PCG even though the paper-facing analyses use Chebyshev.");
  return 0;
}
