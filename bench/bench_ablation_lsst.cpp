// E20 (ablation): hop-metric vs weight-aware low-stretch spanning trees.
// The preconditioner chain's quality is governed by the tree's resistive
// stretch; on graphs whose weights span orders of magnitude the hop-metric
// AKPW ignores exactly the structure that matters.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/low_stretch_tree.hpp"
#include "laplacian/recursive_solver.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E20 / ablation", "hop-metric vs weight-aware low-stretch trees");

  Table table({"weight range", "avg stretch (hops)", "avg stretch (weighted)",
               "improvement"});
  for (const double spread : {1.0, 16.0, 256.0, 4096.0}) {
    Rng rng(71);
    const Graph g = make_weighted_grid(12, 12, rng, 1.0, spread);
    std::vector<double> hop_samples, weighted_samples;
    for (int trial = 0; trial < 4; ++trial) {
      const auto hop_tree = low_stretch_spanning_tree_hops(g, rng);
      hop_samples.push_back(average_stretch(g, hop_tree.tree_edges));
      const auto w_tree = low_stretch_spanning_tree_weighted(g, rng);
      weighted_samples.push_back(average_stretch(g, w_tree.tree_edges));
    }
    const double hop_avg = summarize(hop_samples).mean;
    const double w_avg = summarize(weighted_samples).mean;
    table.add_row({"[1, " + Table::cell(spread, 0) + "]",
                   Table::cell(hop_avg), Table::cell(w_avg),
                   Table::cell(hop_avg / w_avg)});
  }
  table.print(std::cout);

  std::cout << "\nsolver impact (weighted 12x12 grid, spread 256):\n";
  {
    Rng rng(73);
    const Graph g = make_weighted_grid(12, 12, rng, 1.0, 256.0);
    Vec b = random_rhs(g.num_nodes(), rng);
    // The production solver dispatches to the weighted variant; the ablation
    // row below shows the chain statistics it achieves there.
    ShortcutPaOracle oracle(g, rng);
    LaplacianSolverOptions options;
    options.tolerance = 1e-8;
    options.base_size = 48;
    DistributedLaplacianSolver solver(oracle, rng, options);
    const LaplacianSolveReport report = solver.solve(b);
    std::cout << "  outer iterations: " << report.outer_iterations
              << ", PA calls: " << report.pa_calls
              << ", rounds: " << report.local_rounds
              << ", converged: " << (report.converged ? "yes" : "no") << "\n";
    const auto& stats = solver.level_stats();
    if (!stats.empty()) {
      std::cout << "  level-0 avg stretch: " << stats[0].avg_stretch << "\n";
    }
  }
  footnote(
      "Expected shape: identical stretch at spread 1 (the variants coincide "
      "on uniform weights), with the weighted variant's advantage growing "
      "with the weight spread — it admits low-resistance edges first, so "
      "heavy off-tree edges see heavy tree paths. Lower stretch means a "
      "better-conditioned ultra-sparsifier and fewer solver iterations.");
  return 0;
}
