// E10 (Theorem 3): in the HYBRID model (CONGEST + NCC) the solver costs
// n^{o(1)}·log(1/ε) rounds on ANY topology — even ones whose CONGEST
// complexity is Θ̃(√n). With the chain depth pinned (as in E8) the
// per-PA-call cost is the model's contribution: O(ρ + log n) global rounds
// per call, flat across topologies, vs the Θ̃(√n/D-sensitive) local costs
// of pure CONGEST.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E10 / Theorem 3",
         "HYBRID solver: per-call global cost is topology-independent");

  Rng gen_rng(31);
  struct Family {
    const char* name;
    std::vector<Graph> graphs;
  };
  std::vector<Family> families;
  families.push_back({"grid",
                      {make_grid(8, 8), make_grid(12, 12), make_grid(16, 16),
                       make_grid(20, 20)}});
  families.push_back({"expander (d=4)",
                      {make_random_regular(64, 4, gen_rng),
                       make_random_regular(144, 4, gen_rng),
                       make_random_regular(256, 4, gen_rng),
                       make_random_regular(400, 4, gen_rng)}});

  for (const Family& family : families) {
    std::cout << family.name << ":\n";
    Table table({"n", "hybrid rounds", "global rounds", "PA calls",
                 "global rounds/call", "conv"});
    std::vector<double> xs, ys;
    for (const Graph& g : family.graphs) {
      Rng rng(57);
      NccPaOracle oracle(g, rng);
      LaplacianSolverOptions options;
      options.tolerance = 1e-6;
      options.base_size = 24;
      options.max_levels = 3;
      options.inner_iterations = 4;
      options.offtree_fraction = 0.3;
      DistributedLaplacianSolver solver(oracle, rng, options);
      const LaplacianSolveReport report =
          solver.solve(random_rhs(g.num_nodes(), rng));
      table.add_row(
          {Table::cell(g.num_nodes()), Table::cell(report.hybrid_rounds),
           Table::cell(report.global_rounds), Table::cell(report.pa_calls),
           Table::cell(static_cast<double>(report.global_rounds) /
                       static_cast<double>(std::max<std::uint64_t>(
                           report.pa_calls, 1))),
           report.converged ? "yes" : "NO"});
      xs.push_back(static_cast<double>(g.num_nodes()));
      ys.push_back(static_cast<double>(report.global_rounds) /
                   static_cast<double>(std::max<std::uint64_t>(report.pa_calls, 1)));
    }
    table.print(std::cout);
    print_fit("global rounds per PA call vs n", fit_power(xs, ys));
    std::cout << "\n";
  }
  footnote(
      "Expected shape: global-rounds-per-call grows ~logarithmically "
      "(fit exponent near 0) and is nearly identical on grids and "
      "expanders — the NCC oracle's O(rho + log n) cost (Lemma 26) does not "
      "see the topology, which is exactly why Theorem 3 holds for ANY "
      "graph while pure-CONGEST costs split by SQ(G) (compare E8).");
  return 0;
}
