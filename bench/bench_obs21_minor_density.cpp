// E3 (Observation 21 / Figure 3): the 2-layered grid contains a K_{s,s}
// minor (rows of layer 1 × columns of layer 2), so δ(Ĝ₂) = Ω(√n) although
// δ(grid) < 3 — minor density does NOT behave like treewidth under layering.
#include "bench_common.hpp"
#include "congested_pa/layered_graph.hpp"
#include "graph/generators.hpp"
#include "graph/minor_density.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E3 / Observation 21",
         "minor density of the 2-layered grid blows up as Omega(sqrt(n))");

  Table table({"side", "n", "delta(G)", "witness delta(G_2)", "ratio",
               "sqrt(n)/2"});
  std::vector<double> xs, ys;
  for (std::size_t side : {4u, 6u, 8u, 10u, 12u, 16u}) {
    const Graph grid = make_grid(side, side);
    const LayeredGraph layered(grid, 2);
    MinorWitness witness = observation21_witness(layered.graph(), side);
    const bool ok = validate_minor_witness(layered.graph(), witness);
    const double base = simple_edge_density(grid);
    const double lifted = witness.density();
    table.add_row({Table::cell(side), Table::cell(grid.num_nodes()),
                   Table::cell(base), Table::cell(ok ? lifted : -1.0),
                   Table::cell(lifted / base),
                   Table::cell(std::sqrt(static_cast<double>(grid.num_nodes())) / 2)});
    xs.push_back(static_cast<double>(grid.num_nodes()));
    ys.push_back(lifted);
  }
  table.print(std::cout);
  print_fit("witness density vs n", fit_power(xs, ys));
  footnote(
      "Expected shape: witness density grows like sqrt(n)/2 (exponent ~0.5 in "
      "the fit) while delta(G) stays < 2 — the treewidth-style bound of "
      "Lemma 19 provably cannot extend to minor density.");
  return 0;
}
