// E6 (Corollary 23): on general graphs the layered pipeline costs
// Õ(ρ·SQ(G)) — the ρ-dependence is linear because Theorem 22 keeps the
// layered graph's shortcut quality at Õ(SQ(G)). We measure charged rounds
// vs ρ on grids (minor-dense: Õ(ρ·δ·D)) and expanders and fit the exponent.
//
// The (family, ρ) scenarios are independent, so they run through the
// deterministic SimBatch runtime: `--threads N` fans them out across N
// workers while every reported round count stays bit-identical to --threads
// 1 (each scenario's randomness derives from the batch root seed and its
// index, never from the schedule).
#include "bench_common.hpp"
#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"

using namespace dls;
using namespace dls::bench;

int main(int argc, char** argv) {
  const BenchRuntime runtime = bench_runtime(argc, argv);
  banner("E6 / Corollary 23",
         "congested PA rounds on general graphs: near-linear in rho");

  Rng rng(6);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 8x8 (planar)", make_grid(8, 8)});
  cases.push_back({"expander n=64 d=4", make_random_regular(64, 4, rng)});
  const std::vector<std::size_t> rhos{1, 2, 4, 6, 8};

  // One scenario per (family, rho); outcome.results = {rounds, parts, layers}.
  SimBatch batch(/*root_seed=*/6);
  for (const Case& c : cases) {
    for (std::size_t rho : rhos) {
      batch.add(std::string(c.name) + " rho=" + std::to_string(rho),
                [&c, rho](Rng& scenario_rng, SimOutcome& out) {
                  const PartCollection pc =
                      stacked_voronoi_instance(c.graph, 6, rho, scenario_rng);
                  const CongestedPaOutcome outcome = solve_congested_pa(
                      c.graph, pc, unit_values(pc), AggregationMonoid::sum(),
                      scenario_rng);
                  out.results = {static_cast<double>(outcome.total_rounds),
                                 static_cast<double>(pc.num_parts()),
                                 static_cast<double>(outcome.max_layers)};
                  out.ledger = outcome.ledger;
                });
    }
  }
  const WallTimer timer;
  batch.run(runtime.pool_ptr());

  std::size_t scenario = 0;
  for (const Case& c : cases) {
    Table table({"rho", "parts", "charged rounds", "rounds/rho", "layers"});
    std::vector<double> xs, ys;
    for (std::size_t rho : rhos) {
      const SimOutcome& out = batch.outcomes()[scenario++];
      const double rounds = out.results[0];
      table.add_row({Table::cell(rho),
                     Table::cell(static_cast<std::size_t>(out.results[1])),
                     Table::cell(static_cast<std::size_t>(rounds)),
                     Table::cell(rounds / static_cast<double>(rho)),
                     Table::cell(static_cast<std::size_t>(out.results[2]))});
      if (rho >= 2) {  // rho = 1 takes the layering-free fast path
        xs.push_back(static_cast<double>(rho));
        ys.push_back(rounds);
      }
    }
    std::cout << c.name << "\n";
    table.print(std::cout);
    print_fit("rounds vs rho (layered regime, rho >= 2)", fit_power(xs, ys));
    std::cout << "\n";
  }
  footnote(
      "Expected shape: within the layered regime the exponent sits "
      "noticeably below 2 (the treewidth pipeline's bound, E5) and close to "
      "1 — layers grow like O(rho) (Lemma 16's simulation factor) but the "
      "layered shortcut quality stays ~SQ(G) per Theorem 22, so total "
      "rounds are near-linear in rho.");
  print_wall_clock(runtime, timer);
  return 0;
}
