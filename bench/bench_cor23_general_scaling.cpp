// E6 (Corollary 23): on general graphs the layered pipeline costs
// Õ(ρ·SQ(G)) — the ρ-dependence is linear because Theorem 22 keeps the
// layered graph's shortcut quality at Õ(SQ(G)). We measure charged rounds
// vs ρ on grids (minor-dense: Õ(ρ·δ·D)) and expanders and fit the exponent.
#include "bench_common.hpp"
#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E6 / Corollary 23",
         "congested PA rounds on general graphs: near-linear in rho");

  Rng rng(6);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 8x8 (planar)", make_grid(8, 8)});
  cases.push_back({"expander n=64 d=4", make_random_regular(64, 4, rng)});

  for (const Case& c : cases) {
    Table table({"rho", "parts", "charged rounds", "rounds/rho", "layers"});
    std::vector<double> xs, ys;
    for (std::size_t rho : {1u, 2u, 4u, 6u, 8u}) {
      const PartCollection pc = stacked_voronoi_instance(c.graph, 6, rho, rng);
      const auto values = unit_values(pc);
      const CongestedPaOutcome outcome = solve_congested_pa(
          c.graph, pc, values, AggregationMonoid::sum(), rng);
      table.add_row({Table::cell(rho), Table::cell(pc.num_parts()),
                     Table::cell(outcome.total_rounds),
                     Table::cell(static_cast<double>(outcome.total_rounds) /
                                 static_cast<double>(rho)),
                     Table::cell(outcome.max_layers)});
      if (rho >= 2) {  // rho = 1 takes the layering-free fast path
        xs.push_back(static_cast<double>(rho));
        ys.push_back(static_cast<double>(outcome.total_rounds));
      }
    }
    std::cout << c.name << "\n";
    table.print(std::cout);
    print_fit("rounds vs rho (layered regime, rho >= 2)", fit_power(xs, ys));
    std::cout << "\n";
  }
  footnote(
      "Expected shape: within the layered regime the exponent sits "
      "noticeably below 2 (the treewidth pipeline's bound, E5) and close to "
      "1 — layers grow like O(rho) (Lemma 16's simulation factor) but the "
      "layered shortcut quality stays ~SQ(G) per Theorem 22, so total "
      "rounds are near-linear in rho.");
  return 0;
}
