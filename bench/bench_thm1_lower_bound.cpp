// E11 (Theorem 1 / Theorem 29): a Laplacian solver with ε ≤ 1/2 decides the
// spanning connected subgraph problem, so Laplacian solving inherits the
// Ω̃(SQ(G)) lower bound. We (a) verify the reduction decides SCS correctly
// across random instances, and (b) report the solver's rounds against the
// SQ estimate of each topology — consistency with rounds = Ω̃(SQ).
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "lowerbound/spanning_connected_subgraph.hpp"
#include "shortcuts/quality_estimator.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E11 / Theorem 1",
         "SCS via the Laplacian solver: correctness + rounds vs SQ");

  Rng rng(37);
  struct Case {
    const char* name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"grid 7x7", make_grid(7, 7)});
  cases.push_back({"expander n=49", make_random_regular(50, 4, rng)});
  cases.push_back({"cycle n=49", make_cycle(49)});

  Table table({"topology", "SQ~(G)", "instances", "correct", "mean rounds",
               "rounds/SQ~"});
  for (const Case& c : cases) {
    const SqEstimate sq = estimate_shortcut_quality(c.graph, rng);
    int correct = 0;
    const int instances = 6;
    std::vector<double> rounds;
    for (int i = 0; i < instances; ++i) {
      const std::size_t drop = (i % 2 == 0) ? 0 : 8;
      const auto edges = random_scs_instance(c.graph, rng, drop, 2);
      const bool truth = is_spanning_connected(c.graph, edges);
      const ScsDecision decision = decide_spanning_connected_via_laplacian(
          c.graph, edges, OracleKind::kShortcut, rng, 4);
      correct += (decision.connected == truth);
      rounds.push_back(static_cast<double>(decision.local_rounds));
    }
    const Summary s = summarize(rounds);
    table.add_row({c.name, Table::cell(sq.quality),
                   Table::cell(static_cast<long long>(instances)),
                   Table::cell(static_cast<long long>(correct)),
                   Table::cell(s.mean, 0),
                   Table::cell(s.mean / static_cast<double>(
                                            std::max<std::size_t>(sq.quality, 1)))});
  }
  table.print(std::cout);
  footnote(
      "Expected shape: perfect agreement with ground truth (the reduction is "
      "sound), and measured rounds at least ~SQ on every topology — i.e. the "
      "rounds/SQ column stays >= 1, consistent with the Omega~(SQ(G)) lower "
      "bound that Theorem 1 transfers from SCS to Laplacian solving.");
  return 0;
}
