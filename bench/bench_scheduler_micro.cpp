// Wall-clock micro-benchmark (google-benchmark) of the message-level
// aggregation scheduler — the engine every experiment above leans on. Not a
// paper experiment; tracks simulator throughput so regressions in the
// hot loop are caught.
#include <benchmark/benchmark.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "shortcuts/partition.hpp"
#include "shortcuts/partwise_aggregation.hpp"

namespace dls {
namespace {

void BM_TreeAggregation(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  const std::size_t parts = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  const Graph g = make_grid(side, side);
  const PartCollection pc = random_voronoi_partition(g, parts, rng);
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  const BestShortcut best = build_best_shortcut(g, pc, rng);
  for (auto _ : state) {
    Rng run_rng(2);
    const auto outcome = solve_partwise_aggregation(
        g, pc, values, AggregationMonoid::sum(), best.shortcut, run_rng);
    benchmark::DoNotOptimize(outcome.results.data());
  }
  state.counters["simulated_rounds"] = static_cast<double>([&] {
    Rng run_rng(2);
    return solve_partwise_aggregation(g, pc, values, AggregationMonoid::sum(),
                                      best.shortcut, run_rng)
        .schedule.total_rounds;
  }());
}

BENCHMARK(BM_TreeAggregation)
    ->Args({8, 4})
    ->Args({16, 8})
    ->Args({24, 12})
    ->Unit(benchmark::kMillisecond);

void BM_ShortcutConstruction(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Graph g = make_grid(side, side);
  const PartCollection pc = random_voronoi_partition(g, side, rng);
  for (auto _ : state) {
    Rng run_rng(4);
    const BestShortcut best = build_best_shortcut(g, pc, run_rng);
    benchmark::DoNotOptimize(best.quality);
  }
}

BENCHMARK(BM_ShortcutConstruction)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dls

BENCHMARK_MAIN();
