// Wall-clock micro-benchmark (google-benchmark) of the message-level
// aggregation scheduler — the engine every experiment above leans on. Not a
// paper experiment; tracks simulator throughput so regressions in the
// hot loop are caught.
#include <benchmark/benchmark.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "shortcuts/partition.hpp"
#include "shortcuts/partwise_aggregation.hpp"
#include "sim/sync_network.hpp"

namespace dls {
namespace {

void BM_TreeAggregation(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  const std::size_t parts = static_cast<std::size_t>(state.range(1));
  Rng rng(1);
  const Graph g = make_grid(side, side);
  const PartCollection pc = random_voronoi_partition(g, parts, rng);
  std::vector<std::vector<double>> values(pc.num_parts());
  for (std::size_t i = 0; i < pc.num_parts(); ++i) {
    values[i].assign(pc.parts[i].size(), 1.0);
  }
  const BestShortcut best = build_best_shortcut(g, pc, rng);
  for (auto _ : state) {
    Rng run_rng(2);
    const auto outcome = solve_partwise_aggregation(
        g, pc, values, AggregationMonoid::sum(), best.shortcut, run_rng);
    benchmark::DoNotOptimize(outcome.results.data());
  }
  state.counters["simulated_rounds"] = static_cast<double>([&] {
    Rng run_rng(2);
    return solve_partwise_aggregation(g, pc, values, AggregationMonoid::sum(),
                                      best.shortcut, run_rng)
        .schedule.total_rounds;
  }());
}

BENCHMARK(BM_TreeAggregation)
    ->Args({8, 4})
    ->Args({16, 8})
    ->Args({24, 12})
    ->Unit(benchmark::kMillisecond);

void BM_ShortcutConstruction(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Graph g = make_grid(side, side);
  const PartCollection pc = random_voronoi_partition(g, side, rng);
  for (auto _ : state) {
    Rng run_rng(4);
    const BestShortcut best = build_best_shortcut(g, pc, run_rng);
    benchmark::DoNotOptimize(best.quality);
  }
}

BENCHMARK(BM_ShortcutConstruction)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

// Sparse traffic on a large network: two adjacent nodes ping-pong for many
// rounds while every other node is idle. Step cost must scale with messages,
// not nodes — this is the case the epoch-stamped inboxes exist for.
void BM_SyncNetworkSparsePingPong(benchmark::State& state) {
  const std::size_t side = static_cast<std::size_t>(state.range(0));
  const Graph g = make_grid(side, side);
  const Adjacency& a = g.neighbors(0).front();
  for (auto _ : state) {
    SyncNetwork net(g);
    for (int r = 0; r < 256; ++r) {
      CongestMessage m;
      m.from = (r % 2 == 0) ? NodeId{0} : a.neighbor;
      m.to = (r % 2 == 0) ? a.neighbor : NodeId{0};
      m.edge = a.edge;
      m.payload = static_cast<double>(r);
      net.send(m);
      net.step();
    }
    benchmark::DoNotOptimize(net.rounds());
  }
  state.counters["nodes"] = static_cast<double>(g.num_nodes());
}

BENCHMARK(BM_SyncNetworkSparsePingPong)
    ->Arg(16)
    ->Arg(64)
    ->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dls

BENCHMARK_MAIN();
