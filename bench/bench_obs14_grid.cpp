// E1 (Observation 14 / Figure 1): the 2-congested diagonal-stripe instance
// on the √n×√n grid cannot be split into few 1-congested instances — every
// two adjacent parts share a node. We show (a) the overlap structure and (b)
// that solving it part-by-part (the only strategy available to a 1-congested
// oracle) pays Θ(k) phases, while the layered-graph pipeline solves it in a
// congestion-independent number of phases.
#include <set>

#include "bench_common.hpp"
#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E1 / Observation 14",
         "2-congested diagonal instance: one-shot layered pipeline vs "
         "sequential 1-congested decomposition");

  Table table({"side", "n", "parts", "overlapping part pairs", "rho",
               "layered rounds", "sequential rounds", "seq phases",
               "layered peak slot", "seq peak slot"});
  RoundLedger largest_ledger;
  std::size_t largest_side = 0;
  for (std::size_t side : {4u, 8u, 12u, 16u, 20u}) {
    const Graph g = make_grid(side, side);
    const PartCollection pc = figure1_diagonal_instance(side);
    // Count part pairs sharing a node (the reduction obstruction).
    std::size_t overlapping_pairs = 0;
    {
      std::vector<std::vector<std::uint32_t>> parts_of(g.num_nodes());
      for (std::uint32_t i = 0; i < pc.num_parts(); ++i) {
        for (NodeId v : pc.parts[i]) parts_of[v].push_back(i);
      }
      std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
      for (const auto& list : parts_of) {
        for (std::size_t a = 0; a < list.size(); ++a) {
          for (std::size_t b = a + 1; b < list.size(); ++b) {
            pairs.insert({list[a], list[b]});
          }
        }
      }
      overlapping_pairs = pairs.size();
    }
    Rng rng(1);
    const auto values = unit_values(pc);
    const CongestedPaOutcome fast =
        solve_congested_pa(g, pc, values, AggregationMonoid::sum(), rng);
    Rng rng2(1);
    const CongestedPaOutcome slow = solve_congested_pa_sequential_baseline(
        g, pc, values, AggregationMonoid::sum(), rng2);
    table.add_row({Table::cell(side), Table::cell(g.num_nodes()),
                   Table::cell(pc.num_parts()), Table::cell(overlapping_pairs),
                   Table::cell(fast.congestion), Table::cell(fast.total_rounds),
                   Table::cell(slow.total_rounds),
                   Table::cell(static_cast<std::size_t>(slow.phases)),
                   Table::cell(fast.ledger.peak_congestion()),
                   Table::cell(slow.ledger.peak_congestion())});
    largest_ledger = fast.ledger;
    largest_side = side;
  }
  table.print(std::cout);
  print_congestion("layered pipeline congestion, side=" +
                       std::to_string(largest_side),
                   largest_ledger);
  footnote(
      "Expected shape: overlapping pairs grow with the number of parts "
      "(= 2*side-2), so any reduction to 1-congested instances needs "
      "Omega(k) of them (sequential phases column); the layered pipeline's "
      "phase count stays constant (heavy-path depth), demonstrating why "
      "Definition 13 needs dedicated machinery.");
  return 0;
}
