// E2 (Lemma 19): tw(Ĝ_ρ) ≤ ρ·tw(G) + ρ − 1. We measure heuristic treewidth
// upper bounds of layered graphs across families and ρ and compare with the
// lemma's bound.
#include "bench_common.hpp"
#include "congested_pa/layered_graph.hpp"
#include "graph/generators.hpp"
#include "graph/tree_decomposition.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E2 / Lemma 19", "tw(layered(G, rho)) <= rho*tw(G) + rho - 1");

  Table table({"family", "n", "tw(G) ub", "rho", "tw(G_rho) measured",
               "lemma bound", "holds"});
  Rng rng(7);
  struct Case {
    const char* name;
    Graph graph;
    std::size_t tw;  // known treewidth
  };
  std::vector<Case> cases;
  cases.push_back({"path", make_path(24), 1});
  cases.push_back({"caterpillar", make_caterpillar(8, 2), 1});
  cases.push_back({"cycle", make_cycle(18), 2});
  cases.push_back({"2-tree", make_k_tree(20, 2, rng), 2});
  cases.push_back({"3-tree", make_k_tree(16, 3, rng), 3});

  for (const Case& c : cases) {
    for (std::size_t rho : {2u, 3u, 4u, 6u}) {
      const LayeredGraph layered(c.graph, rho);
      // Heuristic upper bound on tw(Ĝ_ρ): best of min-degree and min-fill.
      const std::size_t measured = std::min(
          treewidth_upper_bound(layered.graph(), EliminationHeuristic::kMinDegree),
          treewidth_upper_bound(layered.graph(), EliminationHeuristic::kMinFill));
      const std::size_t bound = rho * c.tw + rho - 1;
      table.add_row({c.name, Table::cell(c.graph.num_nodes()),
                     Table::cell(c.tw), Table::cell(rho),
                     Table::cell(measured), Table::cell(bound),
                     measured <= bound ? "yes" : "heuristic slack"});
    }
  }
  table.print(std::cout);
  footnote(
      "Expected shape: the measured column tracks rho*tw(G) (linear in rho) "
      "and stays at or below the Lemma 19 bound. The measured value is "
      "itself only a heuristic UPPER bound on tw(G_rho), so an occasional "
      "'heuristic slack' row (measured a hair above the lemma bound) "
      "reflects elimination-ordering slack, not a violated lemma. Contrast "
      "with E3 (minor density explodes) and E4 (SQ does not grow at all).");
  return 0;
}
