// E13 (ablation): the ultra-sparsifier's off-tree budget trades
// preconditioner quality against Schur-complement size. Budget 0 (bare
// tree) maximizes elimination but gives the worst condition number; large
// budgets converge in fewer iterations but keep bigger Schur systems (and
// more congested minors). This is the central design dial of the [18]/KMP
// chain our solver inherits.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "laplacian/recursive_solver.hpp"

using namespace dls;
using namespace dls::bench;

int main() {
  banner("E13 / ablation",
         "off-tree sampling budget vs iterations, rounds and chain shape");

  const Graph g = make_grid(14, 14);
  Table table({"offtree fraction", "outer iters", "PA calls", "rounds",
               "levels", "level-1 nodes", "converged"});
  for (double fraction : {0.0, 0.05, 0.1, 0.2, 0.4, 0.8}) {
    Rng rng(41);
    ShortcutPaOracle oracle(g, rng);
    LaplacianSolverOptions options;
    options.tolerance = 1e-6;
    options.base_size = 40;
    options.offtree_fraction = fraction;
    options.tree_preconditioner_only = fraction == 0.0;
    DistributedLaplacianSolver solver(oracle, rng, options);
    const LaplacianSolveReport report =
        solver.solve(random_rhs(g.num_nodes(), rng));
    const auto& stats = solver.level_stats();
    table.add_row({Table::cell(fraction), Table::cell(report.outer_iterations),
                   Table::cell(report.pa_calls),
                   Table::cell(report.local_rounds),
                   Table::cell(solver.num_levels()),
                   Table::cell(stats.size() > 1 ? stats[1].nodes : 0),
                   report.converged ? "yes" : "NO"});
  }
  table.print(std::cout);
  footnote(
      "Expected shape: outer iterations fall as the budget grows (better "
      "spectral approximation) but each extra chain level multiplies the "
      "W-cycle's call count, so total rounds are minimized at SMALL budgets "
      "for this problem size — the kappa-vs-depth balancing act whose "
      "asymptotic resolution is the n^{o(1)} factor of Theorem 28.");
  return 0;
}
