// Chaos-layer overhead: what fault tolerance costs in simulated rounds.
//
// The fault-tolerant scheduler loops retransmit dropped winners, buffer
// delayed/duplicated copies, and dedup arrivals; under a clean plan all of
// that is skipped (null-plan bit-identity), so the interesting number is the
// round inflation as a function of the fault mix. This driver solves one
// stacked-Voronoi instance per (graph family × fault mix), reports
// fault-free vs faulted rounds, the inflation factor, and the injected event
// count — the ledgered budget the chaos tests hold retry overhead against.
//
// Each mix is run twice: once with the message plane as configured (no
// integrity word) and once with payload integrity on. The two runs frame the
// corruption story end to end: without the checksum word a corrupting plan
// silently changes results ("silent diffs" counts the poisoned coordinates),
// with it every corrupted frame is detected, dropped and retransmitted, so
// the result is bit-identical to the clean solve and the extra cost shows up
// honestly as rounds plus one checksum word per transmission.
//
// Flags: --json PATH (flat metrics for scripts/bench_compare.py; round
// counts are deterministic and diff exactly across runs of the same code).
#include "bench_common.hpp"
#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "sim/fault_injection.hpp"

using namespace dls;
using namespace dls::bench;

namespace {

struct Mix {
  const char* name;
  const char* slug;  // json metric key segment
  FaultConfig config;
  bool corrupts;  // integrity-off run may legitimately change results
};

std::vector<Mix> mixes() {
  std::vector<Mix> out;
  out.push_back({"clean", "clean", {}, false});
  {
    FaultConfig c;
    c.drop_rate = 0.1;
    out.push_back({"drop 10%", "drop10", c, false});
  }
  {
    FaultConfig c;
    c.drop_rate = 0.5;
    out.push_back({"drop 50%", "drop50", c, false});
  }
  {
    FaultConfig c;
    c.duplicate_rate = 0.2;
    c.delay_rate = 0.2;
    c.reorder = true;
    out.push_back({"dup+delay+reorder", "dup_delay_reorder", c, false});
  }
  {
    FaultConfig c;
    c.crash_rate = 0.02;
    c.max_crash_len = 3;
    c.drop_rate = 0.1;
    out.push_back({"crash+drop", "crash_drop", c, false});
  }
  {
    FaultConfig c;
    c.corrupt_rate = 0.2;
    out.push_back({"corrupt 20%", "corrupt20", c, true});
  }
  {
    FaultConfig c;
    c.corrupt_rate = 0.15;
    c.drop_rate = 0.15;
    out.push_back({"corrupt+drop", "corrupt_drop", c, true});
  }
  return out;
}

struct RunResult {
  CongestedPaOutcome outcome;
  std::size_t injected = 0;
  std::uint64_t integrity_words = 0;
};

RunResult run_mix(const Graph& g, const PartCollection& pc,
                  const std::vector<std::vector<double>>& values,
                  FaultConfig config, bool integrity) {
  config.integrity = integrity;
  FaultPlan plan(9001, config);
  CongestedPaOptions options;
  options.faults = &plan;
  auto& words = MetricsRegistry::global().counter("net.integrity.words");
  const std::uint64_t words_before = words.value();
  Rng rng(777);
  RunResult out{solve_congested_pa(g, pc, values, AggregationMonoid::sum(), rng,
                                   options),
                0, 0};
  out.injected = plan.injected().size();
  out.integrity_words = words.value() - words_before;
  return out;
}

std::size_t count_diffs(const CongestedPaOutcome& a,
                        const CongestedPaOutcome& b) {
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i] != b.results[i]) ++diffs;
  }
  return diffs;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::string json_path = flags.get("json", "");
  const BenchRuntime runtime = bench_runtime(argc, argv);
  const WallTimer timer;
  banner("chaos overhead",
         "fault injection inflates rounds; integrity makes corruption exact");

  JsonMetrics metrics("corruption_overhead");
  Table table({"graph", "fault mix", "clean rounds", "faulty rounds",
               "integrity rounds", "inflation", "integrity words",
               "silent diffs", "injected events"});
  struct Family {
    const char* name;
    const char* slug;
    Graph g;
  };
  Rng build_rng(2024);
  std::vector<Family> families;
  families.push_back({"grid 8x8", "grid8x8", make_grid(8, 8)});
  families.push_back(
      {"random tree n=48", "tree48", make_random_tree(48, build_rng)});
  families.push_back(
      {"4-regular n=40", "reg40", make_random_regular(40, 4, build_rng)});

  for (const Family& family : families) {
    Rng inst_rng(404);
    const PartCollection pc =
        stacked_voronoi_instance(family.g, 4, 2, inst_rng);
    std::vector<std::vector<double>> values(pc.num_parts());
    for (std::size_t i = 0; i < pc.num_parts(); ++i) {
      values[i].assign(pc.parts[i].size(), 1.0);
    }

    Rng clean_rng(777);
    const CongestedPaOutcome clean = solve_congested_pa(
        family.g, pc, values, AggregationMonoid::sum(), clean_rng);

    for (const Mix& mix : mixes()) {
      const RunResult off = run_mix(family.g, pc, values, mix.config, false);
      const RunResult on = run_mix(family.g, pc, values, mix.config, true);

      // Without corruption in the mix, the fault-tolerant loops must already
      // be exact; with it, only the integrity run is allowed to promise that.
      const std::size_t silent_diffs = count_diffs(off.outcome, clean);
      if (!mix.corrupts && silent_diffs != 0) {
        std::cerr << "FATAL: faulted run changed results\n";
        return 1;
      }
      if (count_diffs(on.outcome, clean) != 0) {
        std::cerr << "FATAL: integrity run changed results\n";
        return 1;
      }

      table.add_row(
          {family.name, mix.name, Table::cell(clean.total_rounds),
           Table::cell(off.outcome.total_rounds),
           Table::cell(on.outcome.total_rounds),
           Table::cell(static_cast<double>(off.outcome.total_rounds) /
                       static_cast<double>(clean.total_rounds)),
           Table::cell(on.integrity_words), Table::cell(silent_diffs),
           Table::cell(off.injected)});

      const std::string prefix =
          std::string(family.slug) + "/" + mix.slug + "/";
      metrics.set(prefix + "rounds_clean",
                  static_cast<double>(clean.total_rounds));
      metrics.set(prefix + "rounds_faulty",
                  static_cast<double>(off.outcome.total_rounds));
      metrics.set(prefix + "rounds_integrity",
                  static_cast<double>(on.outcome.total_rounds));
      metrics.set(prefix + "integrity_words",
                  static_cast<double>(on.integrity_words));
      metrics.set(prefix + "silent_diffs",
                  static_cast<double>(silent_diffs));
    }
  }
  table.print(std::cout);
  footnote(
      "integrity rounds: same mix with a checksum word on every transmission "
      "(corrupted frames detected, dropped, retransmitted); silent diffs: "
      "coordinates the integrity-off run got wrong without any error — the "
      "failure mode the word exists to close.");
  metrics.write(json_path);
  print_wall_clock(runtime, timer);
  return 0;
}
