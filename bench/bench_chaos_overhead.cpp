// Chaos-layer overhead: what fault tolerance costs in simulated rounds.
//
// The fault-tolerant scheduler loops retransmit dropped winners, buffer
// delayed/duplicated copies, and dedup arrivals; under a clean plan all of
// that is skipped (null-plan bit-identity), so the interesting number is the
// round inflation as a function of the fault mix. This driver solves one
// stacked-Voronoi instance per (graph family × fault mix), reports
// fault-free vs faulted rounds, the inflation factor, and the injected event
// count — the ledgered budget the chaos tests hold retry overhead against.
#include "bench_common.hpp"
#include "congested_pa/solver.hpp"
#include "graph/generators.hpp"
#include "sim/fault_injection.hpp"

using namespace dls;
using namespace dls::bench;

namespace {

struct Mix {
  const char* name;
  FaultConfig config;
};

std::vector<Mix> mixes() {
  std::vector<Mix> out;
  out.push_back({"clean", {}});
  {
    FaultConfig c;
    c.drop_rate = 0.1;
    out.push_back({"drop 10%", c});
  }
  {
    FaultConfig c;
    c.drop_rate = 0.5;
    out.push_back({"drop 50%", c});
  }
  {
    FaultConfig c;
    c.duplicate_rate = 0.2;
    c.delay_rate = 0.2;
    c.reorder = true;
    out.push_back({"dup+delay+reorder", c});
  }
  {
    FaultConfig c;
    c.crash_rate = 0.02;
    c.max_crash_len = 3;
    c.drop_rate = 0.1;
    out.push_back({"crash+drop", c});
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchRuntime runtime = bench_runtime(argc, argv);
  const WallTimer timer;
  banner("chaos overhead",
         "fault injection inflates rounds, never changes results");

  Table table({"graph", "fault mix", "clean rounds", "faulty rounds",
               "inflation", "injected events"});
  struct Family {
    const char* name;
    Graph g;
  };
  Rng build_rng(2024);
  std::vector<Family> families;
  families.push_back({"grid 8x8", make_grid(8, 8)});
  families.push_back({"random tree n=48", make_random_tree(48, build_rng)});
  families.push_back({"4-regular n=40", make_random_regular(40, 4, build_rng)});

  for (const Family& family : families) {
    Rng inst_rng(404);
    const PartCollection pc =
        stacked_voronoi_instance(family.g, 4, 2, inst_rng);
    std::vector<std::vector<double>> values(pc.num_parts());
    for (std::size_t i = 0; i < pc.num_parts(); ++i) {
      values[i].assign(pc.parts[i].size(), 1.0);
    }

    Rng clean_rng(777);
    const CongestedPaOutcome clean = solve_congested_pa(
        family.g, pc, values, AggregationMonoid::sum(), clean_rng);

    for (const Mix& mix : mixes()) {
      FaultPlan plan(9001, mix.config);
      CongestedPaOptions options;
      options.faults = &plan;
      Rng rng(777);
      const CongestedPaOutcome faulty = solve_congested_pa(
          family.g, pc, values, AggregationMonoid::sum(), rng, options);
      for (std::size_t i = 0; i < pc.num_parts(); ++i) {
        if (faulty.results[i] != clean.results[i]) {
          std::cerr << "FATAL: faulted run changed results\n";
          return 1;
        }
      }
      table.add_row({family.name, mix.name, Table::cell(clean.total_rounds),
                     Table::cell(faulty.total_rounds),
                     Table::cell(static_cast<double>(faulty.total_rounds) /
                                 static_cast<double>(clean.total_rounds)),
                     Table::cell(plan.injected().size())});
    }
  }
  table.print(std::cout);
  print_wall_clock(runtime, timer);
  return 0;
}
