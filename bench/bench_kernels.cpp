// Kernel-plane microbenchmark (docs/KERNELS.md): the three wall-clock wins
// of the CSR operator plane, measured in isolation from the solver so a
// regression points at the kernel, not the chain above it.
//
//   1. apply: the flattened LaplacianCsr matvec vs the historical
//      adjacency-list laplacian_apply (which pays one indirect edge load per
//      neighbor and allocates its result).
//   2. fused vs unfused: axpy_dot / xpay / apply_dot against the two-pass
//      compositions they replace, on multi-block vectors.
//   3. warm vs cold workspace: repeated CG solves leasing scratch from one
//      persistent SolveWorkspace vs a fresh arena per solve.
//
// Every comparison asserts bit-identity inside the bench — the kernels only
// move time, never bits. Flags: --smoke (small sizes for CI), --json PATH
// (flat metrics for scripts/bench_compare.py), --threads N (pool for the
// blocked kernels; rounds are not involved here, this is pure wall clock).
#include <algorithm>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "linalg/csr.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/solvers.hpp"
#include "linalg/vector_ops.hpp"
#include "linalg/workspace.hpp"
#include "util/assert.hpp"
#include "util/table.hpp"

using namespace dls;
using namespace dls::bench;

namespace {

struct Family {
  std::string name;  // doubles as the metric key prefix
  Graph graph;
};

std::vector<Family> make_families(bool smoke) {
  Rng gen_rng(29);
  std::vector<Family> families;
  if (smoke) {
    families.push_back({"grid", make_grid(12, 12)});
    families.push_back({"expander", make_random_regular(192, 8, gen_rng)});
    families.push_back({"weighted-grid", make_weighted_grid(10, 10, gen_rng)});
  } else {
    families.push_back({"grid", make_grid(64, 64)});
    families.push_back({"expander", make_random_regular(4096, 8, gen_rng)});
    families.push_back({"weighted-grid", make_weighted_grid(48, 48, gen_rng)});
  }
  return families;
}

/// Repetitions scaled so each timed section does comparable work, with a
/// floor so tiny smoke graphs still produce a stable reading.
std::size_t apply_reps(const Graph& g, bool smoke) {
  const std::size_t target = smoke ? 400'000 : 8'000'000;
  return std::max<std::size_t>(64, target / std::max<std::size_t>(g.num_edges(), 1));
}

}  // namespace

int main(int argc, char** argv) {
  const WallTimer total_timer;
  const Flags flags(argc, argv);
  const bool smoke = flags.get_bool("smoke", false);
  const std::string json_path = flags.get("json", "");
  BenchRuntime runtime = bench_runtime(argc, argv);
  ThreadPool* pool = runtime.pool.get();

  banner("kernel plane",
         "CSR apply vs adjacency, fused vs unfused, warm vs cold workspace");

  JsonMetrics metrics("kernels");

  // ---- 1. apply: CSR vs adjacency. ----------------------------------------
  Table apply_table({"family", "n", "m", "reps", "adj ns/apply", "csr ns/apply",
                     "speedup", "bit-identical"});
  for (const Family& family : make_families(smoke)) {
    const Graph& g = family.graph;
    const std::size_t reps = apply_reps(g, smoke);
    Rng rng(g.num_nodes());
    const Vec x = random_rhs(g.num_nodes(), rng);
    const LaplacianCsr csr(g);

    // The historical kernel: adjacency gather, result allocated per call.
    volatile double sink = 0.0;  // keep the loops honest
    WallTimer adj_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      const Vec y = laplacian_apply(g, x, pool);
      sink = sink + y[0];
    }
    const double adj_seconds = adj_timer.seconds();

    Vec y(g.num_nodes());
    WallTimer csr_timer;
    for (std::size_t r = 0; r < reps; ++r) {
      csr.apply(x, y, pool);
      sink = sink + y[0];
    }
    const double csr_seconds = csr_timer.seconds();

    const bool identical = y == laplacian_apply(g, x);
    DLS_REQUIRE(identical,
                "CSR apply diverged from adjacency apply (" + family.name + ")");

    const double adj_ns = adj_seconds * 1e9 / static_cast<double>(reps);
    const double csr_ns = csr_seconds * 1e9 / static_cast<double>(reps);
    apply_table.add_row({family.name, Table::cell(g.num_nodes()),
                         Table::cell(g.num_edges()), Table::cell(reps),
                         Table::cell(adj_ns, 0), Table::cell(csr_ns, 0),
                         Table::cell(adj_ns / csr_ns),
                         identical ? "yes" : "NO"});
    const std::string prefix = family.name + "/";
    metrics.set(prefix + "wall_apply_adj_ns", adj_ns);
    metrics.set(prefix + "wall_apply_csr_ns", csr_ns);
    metrics.set(prefix + "apply_speedup", adj_ns / csr_ns);
  }
  apply_table.print(std::cout);

  // ---- 2. fused vs unfused vector kernels. --------------------------------
  const std::size_t n = smoke ? 3 * kKernelBlock + 123 : 24 * kKernelBlock;
  const std::size_t vec_reps = smoke ? 2'000 : 4'000;
  Rng vec_rng(31);
  Vec vx(n), vy0(n);
  for (double& v : vx) v = vec_rng.next_double() * 2 - 1;
  for (double& v : vy0) v = vec_rng.next_double() * 2 - 1;

  Table fused_table(
      {"kernel", "n", "reps", "unfused ns", "fused ns", "speedup"});
  const auto time_pair = [&](const std::string& name, std::size_t size,
                             auto unfused, auto fused) {
    WallTimer unfused_timer;
    for (std::size_t r = 0; r < vec_reps; ++r) unfused();
    const double unfused_ns =
        unfused_timer.seconds() * 1e9 / static_cast<double>(vec_reps);
    WallTimer fused_timer;
    for (std::size_t r = 0; r < vec_reps; ++r) fused();
    const double fused_ns =
        fused_timer.seconds() * 1e9 / static_cast<double>(vec_reps);
    fused_table.add_row({name, Table::cell(size), Table::cell(vec_reps),
                         Table::cell(unfused_ns, 0), Table::cell(fused_ns, 0),
                         Table::cell(unfused_ns / fused_ns)});
    metrics.set("fused/" + name + "/wall_unfused_ns", unfused_ns);
    metrics.set("fused/" + name + "/wall_fused_ns", fused_ns);
    metrics.set("fused/" + name + "/speedup", unfused_ns / fused_ns);
  };

  {
    // axpy_dot: the CG residual update + convergence check in one pass.
    Vec ya = vy0, yb = vy0;
    double acc_unfused = 0.0, acc_fused = 0.0;
    time_pair(
        "axpy_dot", n,
        [&] {
          blocked_axpy(1e-9, vx, ya, pool);
          acc_unfused += blocked_dot(ya, ya, pool);
        },
        [&] { acc_fused += blocked_axpy_dot(1e-9, vx, yb, pool); });
    DLS_REQUIRE(ya == yb && acc_unfused == acc_fused,
                "blocked_axpy_dot diverged from blocked_axpy + blocked_dot");
  }
  {
    // xpay: the search-direction update p = z + beta p without a temporary.
    Vec ya = vy0, yb = vy0;
    time_pair(
        "xpay", n,
        [&] {
          blocked_scale(ya, 0.999, pool);
          blocked_axpy(1.0, vx, ya, pool);
        },
        [&] { blocked_xpay(vx, 0.999, yb, pool); });
    // scale-then-add and x + beta*y round differently per element; the
    // fused kernel's contract is with the *composed expression*, checked in
    // test_kernels.cpp — here the pair only shares the memory traffic shape.
  }
  {
    // apply_dot: matvec + energy norm in one sweep of the CSR arrays.
    Rng rng(37);
    const Graph g = smoke ? make_grid(12, 12) : make_grid(64, 64);
    const LaplacianCsr csr(g);
    const Vec x = random_rhs(g.num_nodes(), rng);
    Vec ya(g.num_nodes()), yb(g.num_nodes());
    double acc_unfused = 0.0, acc_fused = 0.0;
    time_pair(
        "apply_dot", g.num_nodes(),
        [&] {
          csr.apply(x, ya, pool);
          acc_unfused += blocked_dot(x, ya, pool);
        },
        [&] { acc_fused += csr.apply_dot(x, yb, pool); });
    DLS_REQUIRE(ya == yb && acc_unfused == acc_fused,
                "apply_dot diverged from apply + blocked_dot");
  }
  std::cout << "\nfused vs unfused (" << runtime.threads << " thread(s))\n";
  fused_table.print(std::cout);

  // ---- 3. warm vs cold workspace. -----------------------------------------
  Table ws_table({"family", "n", "solves", "cold ms/solve", "warm ms/solve",
                  "speedup", "cold buffers", "warm buffers", "bit-identical"});
  const std::size_t solves = smoke ? 6 : 12;
  for (const Family& family : make_families(smoke)) {
    const Graph& g = family.graph;
    Rng rng(g.num_nodes() ^ 0xB5);
    const Vec b = random_rhs(g.num_nodes(), rng);
    const LaplacianCsr csr(g);
    SolveOptions options;
    options.tolerance = 1e-8;

    // Cold: a fresh arena per solve — every solve re-allocates its scratch.
    std::uint64_t cold_buffers = 0;
    Vec cold_x;
    WallTimer cold_timer;
    for (std::size_t s = 0; s < solves; ++s) {
      SolveWorkspace ws;
      const SolveResult result = solve_laplacian_cg(csr, b, options, ws);
      cold_buffers += ws.buffer_allocations();
      cold_x = result.x;
    }
    const double cold_seconds = cold_timer.seconds();

    // Warm: one persistent arena — allocations happen on the first solve
    // only, the rest lease recycled buffers.
    SolveWorkspace ws;
    Vec warm_x;
    WallTimer warm_timer;
    for (std::size_t s = 0; s < solves; ++s) {
      const SolveResult result = solve_laplacian_cg(csr, b, options, ws);
      warm_x = result.x;
    }
    const double warm_seconds = warm_timer.seconds();

    const bool identical = warm_x == cold_x;
    DLS_REQUIRE(identical,
                "warm-workspace solve diverged from cold (" + family.name + ")");
    const double cold_ms = cold_seconds * 1e3 / static_cast<double>(solves);
    const double warm_ms = warm_seconds * 1e3 / static_cast<double>(solves);
    ws_table.add_row({family.name, Table::cell(g.num_nodes()),
                      Table::cell(solves), Table::cell(cold_ms),
                      Table::cell(warm_ms), Table::cell(cold_ms / warm_ms),
                      Table::cell(cold_buffers),
                      Table::cell(ws.buffer_allocations()),
                      identical ? "yes" : "NO"});
    const std::string prefix = family.name + "/";
    metrics.set(prefix + "wall_cg_cold_ms", cold_ms);
    metrics.set(prefix + "wall_cg_warm_ms", warm_ms);
    metrics.set(prefix + "cg_workspace_speedup", cold_ms / warm_ms);
    metrics.set(prefix + "ws_buffers_cold",
                static_cast<double>(cold_buffers));
    metrics.set(prefix + "ws_buffers_warm",
                static_cast<double>(ws.buffer_allocations()));
  }
  std::cout << "\nwarm vs cold workspace (CG on the CSR operator)\n";
  ws_table.print(std::cout);

  footnote(
      "Expected shape: the CSR apply beats the adjacency gather by skipping "
      "the per-neighbor edge indirection and the per-call result allocation; "
      "fused kernels save one full pass over the vectors (and apply_dot one "
      "pass over x/y); a warm workspace pins the per-solve buffer count at "
      "zero after the first solve. All three comparisons are asserted "
      "bit-identical inside the bench — the kernel plane moves wall clock "
      "only, never bits (docs/KERNELS.md).");
  print_wall_clock(runtime, total_timer);
  metrics.write(json_path);
  return 0;
}
