// E7 (Lemma 26): ρ-congested part-wise aggregation in the NCC model costs
// O(ρ + log n) global rounds. We sweep both ρ (at fixed n) and n (at fixed
// ρ) and fit the round counts.
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "sim/ncc.hpp"

using namespace dls;
using namespace dls::bench;

namespace {

std::vector<NccPart> full_overlap_parts(std::size_t n, std::size_t rho) {
  std::vector<NccPart> parts(rho);
  for (std::size_t p = 0; p < rho; ++p) {
    for (NodeId v = 0; v < n; ++v) {
      parts[p].members.push_back(v);
      parts[p].values.push_back(1.0);
    }
  }
  return parts;
}

}  // namespace

int main() {
  banner("E7 / Lemma 26", "NCC congested PA rounds = O(rho + log n)");

  Rng rng(11);
  std::cout << "rho sweep at n = 256 (every part contains every node):\n";
  Table rho_table({"rho", "rounds", "messages", "drops", "rounds/(rho+log n)"});
  const std::size_t n = 256;
  const double logn = std::log2(static_cast<double>(n));
  for (std::size_t rho : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const auto outcome = ncc_partwise_aggregate(
        n, full_overlap_parts(n, rho), AggregationMonoid::sum(), rng);
    rho_table.add_row(
        {Table::cell(rho), Table::cell(outcome.rounds),
         Table::cell(outcome.messages), Table::cell(outcome.drops),
         Table::cell(static_cast<double>(outcome.rounds) /
                     (static_cast<double>(rho) + logn))});
  }
  rho_table.print(std::cout);

  std::cout << "\nn sweep at rho = 4:\n";
  Table n_table({"n", "rounds", "rounds/log2(n)"});
  std::vector<double> xs, ys;
  for (std::size_t size : {64u, 128u, 256u, 512u, 1024u}) {
    const auto outcome = ncc_partwise_aggregate(
        size, full_overlap_parts(size, 4), AggregationMonoid::sum(), rng);
    n_table.add_row({Table::cell(size), Table::cell(outcome.rounds),
                     Table::cell(static_cast<double>(outcome.rounds) /
                                 std::log2(static_cast<double>(size)))});
    xs.push_back(static_cast<double>(size));
    ys.push_back(static_cast<double>(outcome.rounds));
  }
  n_table.print(std::cout);
  print_fit("rounds vs n", fit_power(xs, ys));
  footnote(
      "Expected shape: the rho sweep's normalized column is ~constant "
      "(rounds linear in rho once rho >> log n), and the n sweep's exponent "
      "is ~0 (logarithmic growth) — together O(rho + log n), Lemma 26.");
  return 0;
}
